(** Plan evaluation.

    The executor is deliberately ignorant of visibility and
    information-flow policy: it obtains rows only through the
    [scan_table]/[scan_prefix] callbacks of its context, which the core
    implements with MVCC visibility {e and} the Label Confinement Rule
    applied.  This mirrors the paper's placement of enforcement at the
    tuple access layer (section 7.1): bugs in planning or execution
    cannot widen what a query can observe. *)

module Tuple = Ifdb_rel.Tuple
module Expr = Ifdb_rel.Expr
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value

type morsel_source = {
  ms_morsels : int;
      (** number of morsels; the executor schedules task ids
          [0 .. ms_morsels - 1] over the domain pool *)
  ms_run : int -> (Tuple.t -> unit) -> unit;
      (** [ms_run i emit]: push every row of morsel [i] through [emit].
          Called concurrently from worker domains, so the
          implementation must apply visibility and the Label
          Confinement Rule with thread-safe machinery only. *)
}
(** One table scan cut into independently runnable row ranges
    (morsel-driven parallelism).  Morsel order concatenated equals the
    serial scan order. *)

type par = {
  par_pool : Domain_pool.t;
  par_width : int;  (** domains to use, including the caller *)
  par_scan : table:string -> extra:Label.t -> morsel_source option;
      (** morsel-cut counterpart of [scan_table]; [None] when the table
          is too small to be worth cutting (the executor then falls
          back to the serial path) *)
}
(** Parallel-execution hooks.  Parallelism is read-only within the
    session's snapshot: the core only installs [par] for plans that
    cannot write, and all writes stay single-threaded. *)

type ctx = {
  fenv : Expr.env;
  scan_table : string -> extra:Label.t -> Tuple.t Seq.t;
      (** all rows of a table the current process may see, given
          [extra] additional readable tags (from declassifying views) *)
  scan_prefix :
    table:string -> index:string -> prefix:Value.t array ->
    lo:(Value.t * bool) option -> hi:(Value.t * bool) option ->
    extra:Label.t -> Tuple.t Seq.t;
      (** index-assisted variant: rows whose index key starts with
          [prefix], optionally range-bounded on the next key component
          ([(value, inclusive)]) *)
  strip :
    Label.t -> (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list -> Label.t -> Label.t;
      (** [strip declassified relabel row_label]: remove tags covered by
          the declassified label (compound-aware), then apply the
          relabeling view's (from, to) replacements *)
  mv_read : view:string -> extra:Label.t -> Tuple.t list option;
      (** [mv_read ~view ~extra]: the rows of a materialized view as the
          core's IVM registry would serve them to the current session
          ([extra] being the enclosing declassification context of the
          reference), or [None] to force recomputation through the
          view's expansion.  Like [scan_table], the implementation is
          responsible for visibility and declassification — the
          executor emits whatever it returns. *)
  par : par option;
      (** when set, scan/filter/project/declassify pipelines,
          aggregations over them, and hash-join probes run
          morsel-parallel on the domain pool.  [None] reproduces the
          single-domain executor exactly. *)
  trace : Ifdb_obs.Trace.t option;
      (** when set (EXPLAIN ANALYZE), every operator gets a trace node
          recording rows yielded and inclusive wall time, and parallel
          fan-outs record per-worker morsel attribution.  [None] (the
          default for every other statement) adds no per-row work. *)
}

exception Exec_error of string

val run : ctx -> Plan.t -> Tuple.t Seq.t
(** Lazily evaluate a plan. *)

val run_list : ctx -> Plan.t -> Tuple.t list
(** Materialize the whole result. *)

(** Plan evaluation.

    The executor is deliberately ignorant of visibility and
    information-flow policy: it obtains rows only through the
    [scan_table]/[scan_prefix] callbacks of its context, which the core
    implements with MVCC visibility {e and} the Label Confinement Rule
    applied.  This mirrors the paper's placement of enforcement at the
    tuple access layer (section 7.1): bugs in planning or execution
    cannot widen what a query can observe. *)

module Tuple = Ifdb_rel.Tuple
module Expr = Ifdb_rel.Expr
module Label = Ifdb_difc.Label
module Value = Ifdb_rel.Value

type ctx = {
  fenv : Expr.env;
  scan_table : string -> extra:Label.t -> Tuple.t Seq.t;
      (** all rows of a table the current process may see, given
          [extra] additional readable tags (from declassifying views) *)
  scan_prefix :
    table:string -> index:string -> prefix:Value.t array ->
    lo:(Value.t * bool) option -> hi:(Value.t * bool) option ->
    extra:Label.t -> Tuple.t Seq.t;
      (** index-assisted variant: rows whose index key starts with
          [prefix], optionally range-bounded on the next key component
          ([(value, inclusive)]) *)
  strip :
    Label.t -> (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list -> Label.t -> Label.t;
      (** [strip declassified relabel row_label]: remove tags covered by
          the declassified label (compound-aware), then apply the
          relabeling view's (from, to) replacements *)
}

exception Exec_error of string

val run : ctx -> Plan.t -> Tuple.t Seq.t
(** Lazily evaluate a plan. *)

val run_list : ctx -> Plan.t -> Tuple.t list
(** Materialize the whole result. *)

(* Incremental maintenance of (declassifying) materialized views.

   Each CREATE MATERIALIZED VIEW query is compiled to delta form
   (DBToaster-style signed multisets): the maintained state is keyed by
   the *interned label id* of the contributing base rows, so every
   label partition is maintained separately and polyinstantiated
   duplicates stay separate entries.  Declassification and the Label
   Confinement Rule are applied only at read time, from the partition
   ids — the state itself stores undeclassified data and is therefore
   never consulted without a per-partition flow check.

   Supported shapes (everything else falls back to per-read
   recomputation through the view's ordinary plan):

     core   := Scan | Filter(core) | InnerJoin(core, core)   (≤ 2 scans)
     view   := Project(core)                                  rows
             | Sort(Project(core))                            rows + sort
             | Project([Sort]([Filter_having](Aggregate(core))))

   with every expression pure (no user functions, no subqueries) and
   no COUNT(DISTINCT), DISTINCT, LIMIT or outer join.

   Delta evaluation: single-scan cores are maintained from the
   committed transaction's write set alone (insert = +1, delete = −1 —
   an UPDATE contributes both and the signs compose).  Two-scan cores
   use the classic bilinear rule

     Δ(A ⋈ B) = ΔA ⋈ B_new  +  A_new ⋈ ΔB  −  ΔA ⋈ ΔB

   where X_new is the committed-now content of the base table
   (supplied by the core as a privileged, label-blind scan: the state
   must hold *all* partitions; visibility is a read-time question).
   Join deltas assume commits are applied in order (single writer at a
   time) — see DESIGN.md 6.6.

   Aggregates maintain group-wise signed state mirroring the
   executor's [agg_state] semantics exactly: COUNT/SUM/AVG merge
   associatively under signs; MIN/MAX are maintained on insert and
   mark the view stale on a contributing delete (the extreme may have
   left).  A stale view is fully refreshed on its next read. *)

module Expr = Ifdb_rel.Expr
module Value = Ifdb_rel.Value
module Tuple = Ifdb_rel.Tuple
module Label = Ifdb_difc.Label
module Label_store = Ifdb_difc.Label_store
module Authority = Ifdb_difc.Authority

(* ------------------------------------------------------------------ *)
(* Shape compilation                                                   *)
(* ------------------------------------------------------------------ *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* Only pure row computations may run during maintenance or a
   served read: user functions re-enter session state and subqueries
   re-run plans — both also make delta form unsound. *)
let rec pure_expr (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Col _ | Expr.Row_label -> true
  | Expr.Fn _ | Expr.Lazy_const _ | Expr.Param _ -> false
  | Expr.Binop (_, a, b) -> pure_expr a && pure_expr b
  | Expr.Unop (_, a)
  | Expr.Is_null a
  | Expr.Is_not_null a
  | Expr.In_list (a, _)
  | Expr.Like (a, _) ->
      pure_expr a
  | Expr.Case (branches, default) ->
      List.for_all (fun (c, v) -> pure_expr c && pure_expr v) branches
      && pure_expr default

let check_pure what e =
  if not (pure_expr e) then
    unsupported "%s uses a function or subquery" what

(* The source tree: scans glued by pure filters and inner joins.  Scan
   nodes are numbered left to right; [sc_prefix]/ranges are ignored —
   the planner keeps the full predicate in the Filter above, so a full
   scan plus that filter is equivalent. *)
type src =
  | S_scan of int                    (* scan slot *)
  | S_filter of src * Expr.t
  | S_join of { l : src; r : src; cond : Expr.t option }

type kind =
  | K_rows of { exprs : Expr.t array; sort : Plan.order_spec array }
      (* Project over the core; [sort] is in output coordinates *)
  | K_agg of {
      keys : Expr.t array;           (* source coordinates *)
      aggs : Plan.agg_kind array;    (* source coordinates *)
      having : Expr.t option;        (* post-aggregation coordinates *)
      sort : Plan.order_spec array;  (* post-aggregation coordinates *)
      exprs : Expr.t array;          (* final projection, post-agg coords *)
    }

type compiled = {
  c_src : src;
  c_tables : string array;           (* scan slot -> table name *)
  c_kind : kind;
}

let rec compile_src tables (plan : Plan.t) : src =
  match plan with
  | Plan.Scan { sc_table; _ } ->
      tables := !tables @ [ sc_table ];
      S_scan (List.length !tables - 1)
  | Plan.Filter (p, e) ->
      check_pure "a WHERE predicate" e;
      S_filter (compile_src tables p, e)
  | Plan.Join { kind = `Left; _ } -> unsupported "LEFT JOIN"
  | Plan.Join { left; right; kind = `Inner; cond; _ } ->
      Option.iter (check_pure "a join condition") cond;
      let l = compile_src tables left in
      let r = compile_src tables right in
      S_join { l; r; cond }
  | Plan.Project _ -> unsupported "a derived table (subquery in FROM)"
  | Plan.View { v_name; _ } -> unsupported "nested view %s" v_name
  | Plan.One_row -> unsupported "a FROM-less SELECT"
  | Plan.Aggregate _ -> unsupported "a nested aggregate"
  | Plan.Distinct _ -> unsupported "DISTINCT"
  | Plan.Sort _ -> unsupported "ORDER BY inside the source"
  | Plan.Limit _ -> unsupported "LIMIT"
  | Plan.Declassify _ -> unsupported "a nested declassifying view"
  | Plan.Union _ -> unsupported "UNION"

let check_agg (kind : Plan.agg_kind) =
  match kind with
  | Plan.Count_star -> ()
  | Plan.Count_distinct _ -> unsupported "COUNT(DISTINCT)"
  | Plan.Count e | Plan.Sum e | Plan.Avg e | Plan.Min e | Plan.Max e ->
      check_pure "an aggregate argument" e

let compile_sort specs =
  Array.iter (fun s -> check_pure "an ORDER BY key" s.Plan.key) specs;
  specs

(* [plan] is the planner's expansion of the view body (without the
   Declassify boundary above it). *)
let compile (plan : Plan.t) : compiled =
  let tables = ref [] in
  let finish c_src c_kind =
    let c_tables = Array.of_list !tables in
    if Array.length c_tables > 2 then
      unsupported "more than two base tables";
    { c_src; c_tables; c_kind }
  in
  match plan with
  | Plan.Sort (Plan.Project (core, exprs), specs) ->
      Array.iter (check_pure "a SELECT item") exprs;
      finish (compile_src tables core)
        (K_rows { exprs; sort = compile_sort specs })
  | Plan.Project (inner, exprs) -> (
      Array.iter (check_pure "a SELECT item") exprs;
      let sort, inner =
        match inner with
        | Plan.Sort (i, specs) -> (compile_sort specs, i)
        | i -> ([||], i)
      in
      let having, inner =
        match inner with
        | Plan.Filter (i, h) when (match i with Plan.Aggregate _ -> true | _ -> false) ->
            check_pure "a HAVING predicate" h;
            (Some h, i)
        | i -> (None, i)
      in
      match inner with
      | Plan.Aggregate { src; keys; aggs } ->
          Array.iter (check_pure "a GROUP BY key") keys;
          Array.iter check_agg aggs;
          finish (compile_src tables src)
            (K_agg { keys; aggs; having; sort; exprs })
      | core ->
          if sort <> [||] || having <> None then
            unsupported "ORDER BY below the projection";
          finish (compile_src tables core) (K_rows { exprs; sort = [||] }))
  | Plan.Distinct _ -> unsupported "DISTINCT"
  | Plan.Limit _ -> unsupported "LIMIT"
  | _ -> unsupported "this query shape"

(* ------------------------------------------------------------------ *)
(* Maintained state                                                    *)
(* ------------------------------------------------------------------ *)

(* Signed counterpart of the executor's [agg_state].  [a_floats]
   counts Float contributions so SUM's result type stays exact under
   deletion (the executor's one-way [saw_float] cannot be unset). *)
type agg_cell = {
  mutable a_count : int;
  mutable a_sum_int : int;
  mutable a_sum_float : float;
  mutable a_floats : int;
  mutable a_extreme : Value.t;
}

let new_cell () =
  { a_count = 0; a_sum_int = 0; a_sum_float = 0.0; a_floats = 0;
    a_extreme = Value.Null }

type group = { mutable g_rows : int; g_cells : agg_cell array }

(* State keys are (partition label id, value list). *)
type state =
  | St_rows of (int * Value.t list, int ref) Hashtbl.t
  | St_agg of (int * Value.t list, group) Hashtbl.t

type view = {
  mv_name : string;
  mv_declassify : Label.t;
  mv_relabel : (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list;
  mv_shape : (compiled, string) result;
  mutable mv_state : state option;
  mutable mv_stale : bool;
  mutable mv_deltas : int;      (* commit-time delta applications *)
  mutable mv_refreshes : int;   (* full recomputations of the state *)
  mutable mv_served : int;      (* reads answered from the state *)
  mutable mv_recomputes : int;  (* reads that fell back to the plan *)
  mutable mv_skips : int;
      (* commit deltas skipped because label analysis proved no write
         could affect the view's partitions *)
  mutable mv_affects : (string -> int -> bool) option;
      (* [Some f]: [f table lid] says whether a committed write to
         [table] under label id [lid] can affect the view's state.
         Derived from the static label-interval analysis of the view
         body (a filter pinning [_label] to one literal confines the
         view to that single partition); [None] means every write to a
         base table is assumed relevant. *)
  mv_cache : (int, int * Tuple.t list) Hashtbl.t;
      (* dst label id -> (authority generation, served rows): the
         declassified, visibility-filtered result for one reader
         label.  Dropped on every delta/refresh, and entries are
         ignored when the authority generation has moved — this is
         where revocation invalidation bites. *)
}

type t = {
  lstore : Label_store.t;
  strip :
    Label.t -> (Ifdb_difc.Tag.t * Ifdb_difc.Tag.t) list -> Label.t -> Label.t;
  scan : string -> (Tuple.t * int) Seq.t;
      (* committed-now rows of a base table with their interned label
         ids — label-blind on purpose (all partitions) *)
  lock : Mutex.t;
  views : (string, view) Hashtbl.t;
}

let create ~lstore ~strip ~scan () =
  { lstore; strip; scan; lock = Mutex.create (); views = Hashtbl.create 8 }

let norm = String.lowercase_ascii

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Core evaluation over signed sources                                 *)
(* ------------------------------------------------------------------ *)

(* A signed row bound for evaluation: values + partition label id. *)
type srow = { r_sign : int; r_tuple : Tuple.t; r_lid : int }

let row_of t tuple lid =
  (* evaluation tuples carry their canonical label so Row_label and
     label-dependent predicates see exactly what the executor would *)
  if Tuple.label_id tuple = lid then tuple
  else
    Tuple.make_interned ~values:(Tuple.values tuple)
      ~label:(Label_store.label_of t.lstore lid) ~label_id:lid

(* Evaluate the core over per-slot sources, emitting signed core rows. *)
let rec eval_src t (src : src) (sources : srow list array) : srow list =
  match src with
  | S_scan i -> sources.(i)
  | S_filter (sub, pred) ->
      List.filter
        (fun r -> Expr.eval_pred Expr.null_env r.r_tuple pred)
        (eval_src t sub sources)
  | S_join { l; r; cond } ->
      let lrows = eval_src t l sources in
      let rrows = eval_src t r sources in
      List.concat_map
        (fun lr ->
          List.filter_map
            (fun rr ->
              let lid = Label_store.union_id t.lstore lr.r_lid rr.r_lid in
              let values =
                Array.append (Tuple.values lr.r_tuple) (Tuple.values rr.r_tuple)
              in
              let merged =
                Tuple.make_interned ~values
                  ~label:(Label_store.label_of t.lstore lid) ~label_id:lid
              in
              let ok =
                match cond with
                | None -> true
                | Some c -> Expr.eval_pred Expr.null_env merged c
              in
              if ok then
                Some { r_sign = lr.r_sign * rr.r_sign; r_tuple = merged;
                       r_lid = lid }
              else None)
            rrows)
        lrows

let full_scan t table : srow list =
  List.of_seq
    (Seq.map
       (fun (tuple, lid) -> { r_sign = 1; r_tuple = row_of t tuple lid; r_lid = lid })
       (t.scan table))

(* The delta of the core under one transaction's write set.
   Single-scan cores touch no base data at all; two-scan cores apply
   the bilinear rule. *)
let core_delta t (c : compiled) (writes : (string * int * Tuple.t * int) list) :
    srow list =
  let delta_for slot =
    List.filter_map
      (fun (table, sign, tuple, lid) ->
        if norm table = norm c.c_tables.(slot) then
          Some { r_sign = sign; r_tuple = row_of t tuple lid; r_lid = lid }
        else None)
      writes
  in
  match Array.length c.c_tables with
  | 1 -> eval_src t c.c_src [| delta_for 0 |]
  | 2 ->
      let d0 = delta_for 0 and d1 = delta_for 1 in
      if d0 = [] && d1 = [] then []
      else begin
        let new0 = lazy (full_scan t c.c_tables.(0)) in
        let new1 = lazy (full_scan t c.c_tables.(1)) in
        let negate rows =
          List.map (fun r -> { r with r_sign = -r.r_sign }) rows
        in
        let part sources = eval_src t c.c_src sources in
        List.concat
          [
            (if d0 = [] then [] else part [| d0; Lazy.force new1 |]);
            (if d1 = [] then [] else part [| Lazy.force new0; d1 |]);
            (if d0 = [] || d1 = [] then []
             else negate (part [| d0; d1 |]));
          ]
      end
  | _ -> assert false

let core_full t (c : compiled) : srow list =
  eval_src t c.c_src (Array.map (fun table -> full_scan t table) c.c_tables)

(* ------------------------------------------------------------------ *)
(* State maintenance                                                   *)
(* ------------------------------------------------------------------ *)

exception Went_stale

(* Mirror of the executor's [feed_agg], with a sign.  Raises
   [Went_stale] when the state cannot absorb the change (a delete
   touching MIN/MAX, or an inconsistency). *)
let feed_cell (kind : Plan.agg_kind) cell sign row =
  let arg e = Expr.eval Expr.null_env row e in
  match kind with
  | Plan.Count_star -> cell.a_count <- cell.a_count + sign
  | Plan.Count e ->
      if not (Value.is_null (arg e)) then cell.a_count <- cell.a_count + sign
  | Plan.Count_distinct _ -> assert false (* rejected at compile *)
  | Plan.Sum e | Plan.Avg e -> (
      match arg e with
      | Value.Null -> ()
      | Value.Int i ->
          cell.a_count <- cell.a_count + sign;
          cell.a_sum_int <- cell.a_sum_int + (sign * i);
          cell.a_sum_float <- cell.a_sum_float +. (float_of_int sign *. float_of_int i)
      | Value.Float f ->
          cell.a_count <- cell.a_count + sign;
          cell.a_floats <- cell.a_floats + sign;
          cell.a_sum_float <- cell.a_sum_float +. (float_of_int sign *. f)
      | _ -> raise Went_stale)
  | Plan.Min e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          if sign < 0 then raise Went_stale;
          cell.a_count <- cell.a_count + sign;
          if Value.is_null cell.a_extreme || Value.compare v cell.a_extreme < 0
          then cell.a_extreme <- v)
  | Plan.Max e -> (
      match arg e with
      | Value.Null -> ()
      | v ->
          if sign < 0 then raise Went_stale;
          cell.a_count <- cell.a_count + sign;
          if Value.is_null cell.a_extreme || Value.compare v cell.a_extreme > 0
          then cell.a_extreme <- v)

let finish_cell (kind : Plan.agg_kind) cell : Value.t =
  match kind with
  | Plan.Count_star | Plan.Count _ -> Value.Int cell.a_count
  | Plan.Count_distinct _ -> assert false
  | Plan.Sum _ ->
      if cell.a_count = 0 then Value.Null
      else if cell.a_floats > 0 then Value.Float cell.a_sum_float
      else Value.Int cell.a_sum_int
  | Plan.Avg _ ->
      if cell.a_count = 0 then Value.Null
      else Value.Float (cell.a_sum_float /. float_of_int cell.a_count)
  | Plan.Min _ | Plan.Max _ -> cell.a_extreme

(* The executor's [merge_agg] counterpart over cells (associative; no
   signs — both operands are consistent partition states). *)
let merge_cell (kind : Plan.agg_kind) a b =
  match kind with
  | Plan.Count_star | Plan.Count _ -> a.a_count <- a.a_count + b.a_count
  | Plan.Count_distinct _ -> assert false
  | Plan.Sum _ | Plan.Avg _ ->
      a.a_count <- a.a_count + b.a_count;
      a.a_sum_int <- a.a_sum_int + b.a_sum_int;
      a.a_sum_float <- a.a_sum_float +. b.a_sum_float;
      a.a_floats <- a.a_floats + b.a_floats
  | Plan.Min _ ->
      a.a_count <- a.a_count + b.a_count;
      if not (Value.is_null b.a_extreme) then
        if Value.is_null a.a_extreme
           || Value.compare b.a_extreme a.a_extreme < 0
        then a.a_extreme <- b.a_extreme
  | Plan.Max _ ->
      a.a_count <- a.a_count + b.a_count;
      if not (Value.is_null b.a_extreme) then
        if Value.is_null a.a_extreme
           || Value.compare b.a_extreme a.a_extreme > 0
        then a.a_extreme <- b.a_extreme

let copy_cell c =
  { a_count = c.a_count; a_sum_int = c.a_sum_int; a_sum_float = c.a_sum_float;
    a_floats = c.a_floats; a_extreme = c.a_extreme }

(* Fold signed core rows into the state.  Raises [Went_stale] on
   anything the state cannot absorb. *)
let absorb (c : compiled) state (rows : srow list) =
  match (c.c_kind, state) with
  | K_rows { exprs; _ }, St_rows tbl ->
      List.iter
        (fun r ->
          let values =
            Array.to_list
              (Array.map (fun e -> Expr.eval Expr.null_env r.r_tuple e) exprs)
          in
          let key = (r.r_lid, values) in
          let cnt =
            match Hashtbl.find_opt tbl key with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Hashtbl.replace tbl key c;
                c
          in
          cnt := !cnt + r.r_sign;
          if !cnt = 0 then Hashtbl.remove tbl key
          else if !cnt < 0 then raise Went_stale)
        rows
  | K_agg { keys; aggs; _ }, St_agg tbl ->
      List.iter
        (fun r ->
          let kvals =
            Array.to_list
              (Array.map (fun e -> Expr.eval Expr.null_env r.r_tuple e) keys)
          in
          let key = (r.r_lid, kvals) in
          let g =
            match Hashtbl.find_opt tbl key with
            | Some g -> g
            | None ->
                let g =
                  { g_rows = 0;
                    g_cells = Array.map (fun _ -> new_cell ()) aggs }
                in
                Hashtbl.replace tbl key g;
                g
          in
          g.g_rows <- g.g_rows + r.r_sign;
          if g.g_rows < 0 then raise Went_stale;
          Array.iteri
            (fun i kind -> feed_cell kind g.g_cells.(i) r.r_sign r.r_tuple)
            aggs;
          if g.g_rows = 0 then Hashtbl.remove tbl key)
        rows
  | K_rows _, St_agg _ | K_agg _, St_rows _ -> assert false

let fresh_state (c : compiled) =
  match c.c_kind with
  | K_rows _ -> St_rows (Hashtbl.create 64)
  | K_agg _ -> St_agg (Hashtbl.create 64)

let refresh t vw (c : compiled) =
  let state = fresh_state c in
  absorb c state (core_full t c);
  vw.mv_state <- Some state;
  vw.mv_stale <- false;
  vw.mv_refreshes <- vw.mv_refreshes + 1;
  Hashtbl.reset vw.mv_cache

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let register t ~name ~plan ~declassify ~relabel =
  let shape =
    match compile plan with
    | c -> Ok c
    | exception Unsupported reason -> Error reason
  in
  let vw =
    {
      mv_name = norm name;
      mv_declassify = declassify;
      mv_relabel = relabel;
      mv_shape = shape;
      mv_state = None;
      mv_stale = false;
      mv_deltas = 0;
      mv_refreshes = 0;
      mv_served = 0;
      mv_recomputes = 0;
      mv_skips = 0;
      mv_affects = None;
      mv_cache = Hashtbl.create 8;
    }
  in
  with_lock t (fun () ->
      Hashtbl.replace t.views (norm name) vw;
      match shape with
      | Ok c -> ( try refresh t vw c with _ -> vw.mv_stale <- true)
      | Error _ -> ())

(* A view whose body could not even be planned at definition time
   (e.g. it needs execution context the DDL path does not have): keep
   it visible to introspection as permanently recompute-only. *)
let register_unsupported t ~name ~reason =
  let vw =
    {
      mv_name = norm name;
      mv_declassify = Label.empty;
      mv_relabel = [];
      mv_shape = Error reason;
      mv_state = None;
      mv_stale = false;
      mv_deltas = 0;
      mv_refreshes = 0;
      mv_served = 0;
      mv_recomputes = 0;
      mv_skips = 0;
      mv_affects = None;
      mv_cache = Hashtbl.create 1;
    }
  in
  with_lock t (fun () -> Hashtbl.replace t.views (norm name) vw)

let unregister t name = with_lock t (fun () -> Hashtbl.remove t.views (norm name))

let find t name = Hashtbl.find_opt t.views (norm name)

let set_affects t ~view pred =
  with_lock t (fun () ->
      match find t view with
      | Some vw -> vw.mv_affects <- pred
      | None -> ())

let base_tables t name =
  with_lock t (fun () ->
      match find t name with
      | Some { mv_shape = Ok c; _ } -> Array.to_list c.c_tables
      | Some { mv_shape = Error _; _ } | None -> [])

let interested t table =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ vw acc ->
          acc
          || match vw.mv_shape with
             | Error _ -> false
             | Ok c ->
                 Array.exists (fun tb -> norm tb = norm table) c.c_tables)
        t.views false)

let invalidate_table t table =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ vw ->
          match vw.mv_shape with
          | Error _ -> ()
          | Ok c ->
              if Array.exists (fun tb -> norm tb = norm table) c.c_tables then begin
                vw.mv_state <- None;
                vw.mv_stale <- true;
                Hashtbl.reset vw.mv_cache
              end)
        t.views)

(* Apply one committed transaction's write set: (table, sign, tuple,
   label id), oldest first.  Under a sampled span context the whole
   delta application is one "ivm.delta" span (argument: write count —
   a size, never tuple content). *)
let apply t (writes : (string * int * Tuple.t * int) list) =
  if writes <> [] then
    Ifdb_obs.Span.timed "ivm.delta"
      ~args:[ ("writes", string_of_int (List.length writes)) ]
    @@ fun () ->
    with_lock t (fun () ->
        Hashtbl.iter
          (fun _ vw ->
            match (vw.mv_shape, vw.mv_state) with
            | Error _, _ | _, None -> ()
            | Ok c, Some state ->
                if not vw.mv_stale then begin
                  let base table =
                    Array.exists (fun tb -> norm tb = norm table) c.c_tables
                  in
                  let touched =
                    List.exists (fun (table, _, _, _) -> base table) writes
                  in
                  if touched then begin
                    (* label pruning: when static analysis pinned the
                       view to specific partitions, writes under labels
                       that provably cannot reach the view's state are
                       no-op deltas — drop them before evaluation.  A
                       commit whose base-table writes are all pruned
                       leaves the state (and the per-reader cache)
                       untouched. *)
                    let relevant =
                      match vw.mv_affects with
                      | None -> writes
                      | Some f ->
                          List.filter
                            (fun (table, _, _, lid) ->
                              (not (base table)) || f table lid)
                            writes
                    in
                    if not (List.exists (fun (table, _, _, _) -> base table)
                              relevant)
                    then vw.mv_skips <- vw.mv_skips + 1
                    else begin
                      (match absorb c state (core_delta t c relevant) with
                      | () -> vw.mv_deltas <- vw.mv_deltas + 1
                      | exception _ ->
                          (* anything the delta path cannot absorb —
                             MIN/MAX deletes, an evaluation error — falls
                             back to a full refresh at the next read; the
                             commit itself already succeeded *)
                          vw.mv_stale <- true);
                      Hashtbl.reset vw.mv_cache
                    end
                  end
                end)
          t.views)

(* ------------------------------------------------------------------ *)
(* Read path                                                           *)
(* ------------------------------------------------------------------ *)

(* Assemble the served rows for a reader whose scan destination label
   (session label ∪ every extra readable tag at this reference,
   including the view's own declassification) interns to [dst].  A
   partition is visible iff its label flows to that destination —
   exactly the check [scan_label_filter] would make per tuple — and
   each emitted row's label is the partition label put through the
   view's Declassify boundary. *)
let assemble t vw (c : compiled) state ~dst : Tuple.t list =
  let visible lid = Label_store.flows_id t.lstore ~src:lid ~dst in
  let out_label lid =
    t.strip vw.mv_declassify vw.mv_relabel (Label_store.label_of t.lstore lid)
  in
  let sort_rows specs rows =
    if specs = [||] then rows
    else begin
      let decorated =
        List.map
          (fun row ->
            ( Array.map
                (fun s -> Expr.eval Expr.null_env row s.Plan.key)
                specs,
              row ))
          rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go i =
          if i >= Array.length specs then 0
          else
            let cv = Value.compare ka.(i) kb.(i) in
            if cv = 0 then go (i + 1)
            else if specs.(i).Plan.descending then -cv
            else cv
        in
        go 0
      in
      List.map snd (List.stable_sort cmp decorated)
    end
  in
  match (c.c_kind, state) with
  | K_rows { exprs = _; sort }, St_rows tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun (lid, values) cnt ->
          if !cnt > 0 && visible lid then begin
            let row =
              Tuple.make ~values:(Array.of_list values) ~label:(out_label lid)
            in
            for _ = 1 to !cnt do
              rows := row :: !rows
            done
          end)
        tbl;
      sort_rows sort !rows
  | K_agg { keys; aggs; having; sort; exprs }, St_agg tbl ->
      (* merge visible partitions per group key *)
      let merged : (Value.t list, agg_cell array * Label.t ref) Hashtbl.t =
        Hashtbl.create 32
      in
      Hashtbl.iter
        (fun (lid, kvals) g ->
          if g.g_rows > 0 && visible lid then
            match Hashtbl.find_opt merged kvals with
            | None ->
                Hashtbl.replace merged kvals
                  ( Array.map copy_cell g.g_cells,
                    ref (Label_store.label_of t.lstore lid) )
            | Some (cells, lbl) ->
                Array.iteri
                  (fun i kind -> merge_cell kind cells.(i) g.g_cells.(i))
                  aggs;
                lbl := Label.union !lbl (Label_store.label_of t.lstore lid))
        tbl;
      let grouped = ref [] in
      Hashtbl.iter
        (fun kvals (cells, lbl) ->
          let values =
            Array.append (Array.of_list kvals)
              (Array.mapi (fun i kind -> finish_cell kind cells.(i)) aggs)
          in
          grouped :=
            Tuple.make ~values
              ~label:(t.strip vw.mv_declassify vw.mv_relabel !lbl)
            :: !grouped)
        merged;
      let grouped =
        if !grouped = [] && Array.length keys = 0 then
          (* aggregates over an empty visible input with no GROUP BY
             yield one public row of identities, as the executor does *)
          [
            Tuple.make
              ~values:
                (Array.map (fun kind -> finish_cell kind (new_cell ())) aggs)
              ~label:Label.empty;
          ]
        else !grouped
      in
      let grouped =
        match having with
        | None -> grouped
        | Some h ->
            List.filter (fun row -> Expr.eval_pred Expr.null_env row h) grouped
      in
      let grouped = sort_rows sort grouped in
      List.map
        (fun row ->
          Tuple.make
            ~values:(Array.map (fun e -> Expr.eval Expr.null_env row e) exprs)
            ~label:(Tuple.label row))
        grouped
  | K_rows _, St_agg _ | K_agg _, St_rows _ -> assert false

let read t ~view ~dst : Tuple.t list option =
  with_lock t (fun () ->
      match find t view with
      | None -> None
      | Some vw -> (
          match vw.mv_shape with
          | Error _ ->
              vw.mv_recomputes <- vw.mv_recomputes + 1;
              None
          | Ok c -> (
              let generation =
                Authority.generation (Label_store.authority t.lstore)
              in
              (match (vw.mv_stale, vw.mv_state) with
              | true, _ | _, None -> (
                  match refresh t vw c with
                  | () -> ()
                  | exception _ -> vw.mv_state <- None)
              | false, Some _ -> ());
              match vw.mv_state with
              | None ->
                  vw.mv_recomputes <- vw.mv_recomputes + 1;
                  None
              | Some state -> (
                  match Hashtbl.find_opt vw.mv_cache dst with
                  | Some (g, rows) when g = generation ->
                      vw.mv_served <- vw.mv_served + 1;
                      Some rows
                  | Some _ | None ->
                      let rows = assemble t vw c state ~dst in
                      Hashtbl.replace vw.mv_cache dst (generation, rows);
                      vw.mv_served <- vw.mv_served + 1;
                      Some rows))))

let note_recompute t view =
  with_lock t (fun () ->
      match find t view with
      | Some vw -> vw.mv_recomputes <- vw.mv_recomputes + 1
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type view_stats = {
  vs_name : string;
  vs_supported : bool;
  vs_reason : string;  (* why delta maintenance is off; "" when on *)
  vs_rows : int;       (* entries currently materialized *)
  vs_partitions : int; (* distinct label partitions in the state *)
  vs_stale : bool;
  vs_deltas : int;
  vs_refreshes : int;
  vs_served : int;
  vs_recomputes : int;
  vs_skipped : int;    (* deltas skipped by label-interval analysis *)
}

let view_stats_of vw =
  let rows, partitions =
    match vw.mv_state with
    | None -> (0, 0)
    | Some (St_rows tbl) ->
        let parts = Hashtbl.create 8 in
        Hashtbl.iter (fun (lid, _) _ -> Hashtbl.replace parts lid ()) tbl;
        (Hashtbl.length tbl, Hashtbl.length parts)
    | Some (St_agg tbl) ->
        let parts = Hashtbl.create 8 in
        Hashtbl.iter (fun (lid, _) _ -> Hashtbl.replace parts lid ()) tbl;
        (Hashtbl.length tbl, Hashtbl.length parts)
  in
  {
    vs_name = vw.mv_name;
    vs_supported = (match vw.mv_shape with Ok _ -> true | Error _ -> false);
    vs_reason = (match vw.mv_shape with Ok _ -> "" | Error r -> r);
    vs_rows = rows;
    vs_partitions = partitions;
    vs_stale = vw.mv_stale;
    vs_deltas = vw.mv_deltas;
    vs_refreshes = vw.mv_refreshes;
    vs_served = vw.mv_served;
    vs_recomputes = vw.mv_recomputes;
    vs_skipped = vw.mv_skips;
  }

let stats t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ vw acc -> view_stats_of vw :: acc) t.views []
      |> List.sort (fun a b -> compare a.vs_name b.vs_name))

let count t = with_lock t (fun () -> Hashtbl.length t.views)

(* Static shape check, for the lint / analysis layer: would this plan
   be maintained incrementally?  [Ok ()] or the reason it would not. *)
let plan_supported (plan : Plan.t) : (unit, string) result =
  match compile plan with
  | (_ : compiled) -> Ok ()
  | exception Unsupported reason -> Error reason

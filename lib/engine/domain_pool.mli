(** A reusable pool of worker domains for morsel-driven parallel query
    execution (OCaml 5 [Domain]s).

    The pool owns [workers t] long-lived domains; the calling thread is
    worker [0], so a pool with [w] workers executes with parallelism
    [w + 1].  Work is submitted as a batch of [tasks] indexed
    [0 .. tasks-1]; idle workers pull indices from a shared atomic
    counter (morsel stealing), so uneven morsels balance automatically.
    Only one batch runs at a time — queries are single-threaded above
    the executor, so the pool never needs a queue of jobs.

    Domains are a scarce resource (the runtime caps them at ~128 and
    each is an OS thread), so pools are not created per database:
    {!get} returns a process-wide shared pool, growing it on demand and
    never past [Domain.recommended_domain_count () - 1] workers unless
    the caller explicitly asks for more (useful for correctness tests
    on small machines).  Worker domains block on a condition variable
    between batches and are joined at process exit. *)

type t

val get : parallelism:int -> t
(** The shared pool, grown (never shrunk) so that {!parallelism}
    [t >= min parallelism (max_parallelism ())] — on a machine with
    fewer cores than requested the pool still provides the requested
    worker count, so multi-domain scheduling is exercised; speedup is
    naturally bounded by the hardware. *)

val parallelism : t -> int
(** Workers + 1 (the calling thread participates). *)

val max_parallelism : unit -> int
(** [Domain.recommended_domain_count ()]: the pool's natural size. *)

type stats = {
  dp_batches : int;  (** [parallel_for] batches submitted (incl. inline) *)
  dp_tasks : int;  (** tasks (morsels) executed *)
  dp_stolen : int;  (** tasks claimed by a pool worker, not the caller *)
}

val stats : unit -> stats
(** Process-wide lifetime counters (the pool is process-wide too).
    Monotone; never reset. *)

val parallel_for : t -> ?width:int -> tasks:int -> (worker:int -> int -> unit) -> unit
(** [parallel_for t ~tasks f] runs [f ~worker i] for every
    [i in 0 .. tasks-1], distributing indices over the caller
    (worker 0) and the pool's domains (workers [1 .. w]).  [worker] is
    a stable slot id < {!parallelism}[ t], usable to index per-worker
    accumulators without locking.  [?width] caps how many workers
    participate (default: all).  Blocks until every index has run.  If
    any task raises, remaining indices are abandoned and the first
    exception is re-raised in the caller.  Not reentrant: [f] must not
    itself call {!parallel_for} on the same pool (nested calls fall
    back to inline execution). *)

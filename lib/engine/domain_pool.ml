(* A shared pool of worker domains.  One batch at a time: the caller
   publishes a job (an atomic index counter over [tasks]), workers and
   caller race to claim indices, and the caller blocks until every
   claimed index has finished.  Epoch + job are only ever read together
   under the mutex, so a worker either joins the current batch
   atomically with observing it, or waits for the next one — there is
   no window where a stale worker can join a completed batch. *)

type job = {
  j_tasks : int;
  j_width : int; (* worker slots allowed to participate, incl. caller *)
  j_next : int Atomic.t;
  j_f : worker:int -> int -> unit;
  j_cancelled : bool Atomic.t;
  mutable j_exn : exn option; (* first failure; guarded by the pool mutex *)
  mutable j_running : int; (* pool workers currently inside the job *)
}

type t = {
  m : Mutex.t;
  work_cv : Condition.t; (* workers: a new batch was published *)
  done_cv : Condition.t; (* caller: a worker left the batch *)
  mutable epoch : int;
  mutable job : job option;
  mutable nworkers : int;
  mutable domains : unit Domain.t list;
  mutable stopping : bool;
  mutable busy : bool; (* reentrancy guard: a batch is executing *)
}

let max_parallelism () = Domain.recommended_domain_count ()

(* Lifetime accounting, process-wide like the pool itself: batches
   submitted, tasks (morsels) executed, and tasks stolen — claimed by a
   pool worker rather than the submitting thread (worker 0).  Kept as
   plain atomics so the observability layer can expose them as gauges
   without the pool depending on it. *)
type stats = { dp_batches : int; dp_tasks : int; dp_stolen : int }

let stat_batches = Atomic.make 0
let stat_tasks = Atomic.make 0
let stat_stolen = Atomic.make 0

let stats () =
  {
    dp_batches = Atomic.get stat_batches;
    dp_tasks = Atomic.get stat_tasks;
    dp_stolen = Atomic.get stat_stolen;
  }

(* Claim indices until exhausted or cancelled.  Any exception cancels
   the batch; the first one is kept and re-raised by the caller. *)
let run_share job ~worker =
  let rec loop () =
    if not (Atomic.get job.j_cancelled) then begin
      let i = Atomic.fetch_and_add job.j_next 1 in
      if i < job.j_tasks then begin
        Atomic.incr stat_tasks;
        if worker <> 0 then Atomic.incr stat_stolen;
        (try job.j_f ~worker i
         with e ->
           Atomic.set job.j_cancelled true;
           raise e);
        loop ()
      end
    end
  in
  loop ()

let rec worker_loop t ~slot ~seen_epoch =
  Mutex.lock t.m;
  while (not t.stopping) && (t.epoch = seen_epoch || t.job = None) do
    Condition.wait t.work_cv t.m
  done;
  if t.stopping then Mutex.unlock t.m
  else begin
    let epoch = t.epoch in
    let job = Option.get t.job in
    if slot < job.j_width then begin
      job.j_running <- job.j_running + 1;
      Mutex.unlock t.m;
      let failure = try run_share job ~worker:slot; None with e -> Some e in
      Mutex.lock t.m;
      (match failure with
      | Some e when job.j_exn = None -> job.j_exn <- Some e
      | Some _ | None -> ());
      job.j_running <- job.j_running - 1;
      if job.j_running = 0 then Condition.broadcast t.done_cv;
      Mutex.unlock t.m
    end
    else Mutex.unlock t.m;
    worker_loop t ~slot ~seen_epoch:epoch
  end

let create () =
  {
    m = Mutex.create ();
    work_cv = Condition.create ();
    done_cv = Condition.create ();
    epoch = 0;
    job = None;
    nworkers = 0;
    domains = [];
    stopping = false;
    busy = false;
  }

(* Grow to [n] workers; only called from the single query thread, with
   no batch in flight. *)
let ensure_workers t n =
  Mutex.lock t.m;
  let epoch = t.epoch in
  while t.nworkers < n do
    t.nworkers <- t.nworkers + 1;
    let slot = t.nworkers in
    t.domains <-
      Domain.spawn (fun () -> worker_loop t ~slot ~seen_epoch:epoch)
      :: t.domains
  done;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let parallelism t = t.nworkers + 1

let shared : t option ref = ref None

let get ~parallelism:want =
  let t =
    match !shared with
    | Some t -> t
    | None ->
        let t = create () in
        shared := Some t;
        at_exit (fun () -> match !shared with Some p -> shutdown p | None -> ());
        t
  in
  (* never exceed the machine's recommendation by default, but honor an
     explicit larger request (multi-domain tests on small machines) *)
  let workers = max 0 (want - 1) in
  if workers > t.nworkers then ensure_workers t workers;
  t

let parallel_for t ?width ~tasks f =
  if tasks <= 0 then ()
  else begin
    let width =
      match width with
      | Some w -> max 1 (min w (parallelism t))
      | None -> parallelism t
    in
    (* Under a sampled span context, each morsel is recorded as a
       "morsel" span: worker slot, whether a pool worker stole it from
       the submitting thread, and how long it sat queued between batch
       publication and being claimed.  Workers inherit the submitting
       domain's context for the duration of their share, so morsel
       spans land in the same statement record.  Unsampled batches run
       [f] untouched — no clock reads, no wrapper. *)
    let module Span = Ifdb_obs.Span in
    let f =
      match Span.current () with
      | None -> f
      | Some ctx ->
          let t_pub = Span.now_ns () in
          fun ~worker i ->
            let run () =
              let t0 = Span.now_ns () in
              Fun.protect
                ~finally:(fun () ->
                  let t1 = Span.now_ns () in
                  Span.emit ctx "morsel"
                    ~args:
                      [
                        ("worker", string_of_int worker);
                        ("stolen", if worker = 0 then "false" else "true");
                        ("queue_ns", string_of_int (max 0 (t0 - t_pub)));
                      ]
                    ~t0 ~t1)
                (fun () -> f ~worker i)
            in
            (* the submitting domain already carries the context (and
               its open-span stack, so morsels nest under the phase
               that launched the batch); worker domains borrow it *)
            (match Span.current () with
            | Some c when c == ctx -> run ()
            | _ -> Span.with_current (Some ctx) run)
    in
    if width = 1 || tasks = 1 || t.nworkers = 0 || t.busy then begin
      (* inline: no workers, a single morsel, or a nested call *)
      Atomic.incr stat_batches;
      ignore (Atomic.fetch_and_add stat_tasks tasks);
      for i = 0 to tasks - 1 do
        f ~worker:0 i
      done
    end
    else begin
      Atomic.incr stat_batches;
      let job =
        {
          j_tasks = tasks;
          j_width = width;
          j_next = Atomic.make 0;
          j_f = f;
          j_cancelled = Atomic.make false;
          j_exn = None;
          j_running = 0;
        }
      in
      Mutex.lock t.m;
      t.busy <- true;
      t.epoch <- t.epoch + 1;
      t.job <- Some job;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.m;
      let own_failure = try run_share job ~worker:0; None with e -> Some e in
      Mutex.lock t.m;
      while job.j_running > 0 do
        Condition.wait t.done_cv t.m
      done;
      t.job <- None;
      t.busy <- false;
      let worker_failure = job.j_exn in
      Mutex.unlock t.m;
      match own_failure with
      | Some e -> raise e
      | None -> ( match worker_failure with Some e -> raise e | None -> ())
    end
  end

type record =
  | Begin of int
  | Insert of string * int * int
  | Delete of string * int
  | Commit of int
  | Abort of int
  | Checkpoint
  | Audit of string

type stats = { records : int; bytes : int; fsyncs : int; io_ns : int }

type t = {
  fsync_cost_ns : int;
  mu : Mutex.t;
  mutable log : record list; (* newest first; bounded by [keep] *)
  mutable kept : int;
  mutable records : int;
  mutable bytes : int;
  mutable fsyncs : int;
  mutable io_ns : int;
  mutable on_fsync : float -> unit;
      (* fsync-stall observer (seconds, modeled cost included); called
         only for fsyncs issued under a sampled span context, so the
         unsampled path never reads a clock here *)
}

let keep = 1024

let create ?(fsync_cost_ns = 200_000) () =
  {
    fsync_cost_ns;
    mu = Mutex.create ();
    log = [];
    kept = 0;
    records = 0;
    bytes = 0;
    fsyncs = 0;
    io_ns = 0;
    on_fsync = ignore;
  }

let set_fsync_observer t f = t.on_fsync <- f

let record_bytes = function
  | Begin _ | Commit _ | Abort _ | Checkpoint -> 16
  | Delete (_, _) -> 24
  | Insert (_, _, payload) -> 24 + payload
  | Audit line -> 16 + String.length line

let append_locked t r =
  t.records <- t.records + 1;
  t.bytes <- t.bytes + record_bytes r;
  if t.kept >= keep then begin
    (* Drop the tail half to stay bounded without per-append cost. *)
    t.log <- (let rec take n = function
                | [] -> []
                | _ when n = 0 -> []
                | x :: rest -> x :: take (n - 1) rest
              in
              take (keep / 2) (r :: t.log));
    t.kept <- keep / 2
  end
  else begin
    t.log <- r :: t.log;
    t.kept <- t.kept + 1
  end

let append t r = Mutex.protect t.mu (fun () -> append_locked t r)

let append_batch t rs =
  (* one lock acquisition for the whole run; byte and record accounting
     is per record, identical to [List.iter (append t)] *)
  Mutex.protect t.mu (fun () -> List.iter (append_locked t) rs)

let fsync_locked t =
  t.fsyncs <- t.fsyncs + 1;
  t.io_ns <- t.io_ns + t.fsync_cost_ns

(* The stall a real disk would charge is the {e modeled} cost; the
   wall-clock part is just mutex + counters.  Under a sampled span
   context the fsync becomes a "wal.fsync" span (real wall time, with
   the modeled cost as an argument) and feeds the stall observer with
   wall + modeled seconds; otherwise this path reads no clock. *)
let fsync t =
  match Ifdb_obs.Span.current () with
  | None -> Mutex.protect t.mu (fun () -> fsync_locked t)
  | Some ctx ->
      let t0 = Ifdb_obs.Span.now_ns () in
      Mutex.protect t.mu (fun () -> fsync_locked t);
      let t1 = Ifdb_obs.Span.now_ns () in
      Ifdb_obs.Span.emit ctx "wal.fsync"
        ~args:[ ("modeled_ns", string_of_int t.fsync_cost_ns) ]
        ~t0 ~t1;
      t.on_fsync (float_of_int (t1 - t0 + t.fsync_cost_ns) /. 1e9)

let stats t =
  Mutex.protect t.mu (fun () ->
      { records = t.records; bytes = t.bytes; fsyncs = t.fsyncs; io_ns = t.io_ns })

let reset_stats t =
  Mutex.protect t.mu (fun () ->
      t.records <- 0;
      t.bytes <- 0;
      t.fsyncs <- 0;
      t.io_ns <- 0)

let io_ns t = Mutex.protect t.mu (fun () -> t.io_ns)

let recent t n =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Mutex.protect t.mu (fun () -> take n t.log)

(** Write-ahead log with group-commit accounting.

    The log is kept in memory; what matters to the benchmarks is the
    {e accounting}: bytes appended and fsyncs issued, each fsync
    charging a simulated latency.  CarTel batches 200 inserts per
    transaction "partly to compensate for the lack of group commit in
    PostgreSQL" (section 8.2.2) — with this model, larger transactions
    amortize the per-commit fsync exactly as they do there. *)

type record =
  | Begin of int                       (** xid *)
  | Insert of string * int * int      (** table, vid, payload bytes *)
  | Delete of string * int            (** table, vid *)
  | Commit of int
  | Abort of int
  | Checkpoint

type stats = {
  records : int;
  bytes : int;
  fsyncs : int;
  io_ns : int;
}

type t

val create : ?fsync_cost_ns:int -> unit -> t
(** Default fsync cost: 200 µs (battery-backed-cache ballpark). *)

val append : t -> record -> unit

val fsync : t -> unit
(** Force the log; called at commit. *)

val stats : t -> stats
val reset_stats : t -> unit
val io_ns : t -> int

val recent : t -> int -> record list
(** The last [n] records, newest first (debugging and tests). *)

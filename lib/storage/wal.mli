(** Write-ahead log with group-commit accounting.

    The log is kept in memory; what matters to the benchmarks is the
    {e accounting}: bytes appended and fsyncs issued, each fsync
    charging a simulated latency.  CarTel batches 200 inserts per
    transaction "partly to compensate for the lack of group commit in
    PostgreSQL" (section 8.2.2) — with this model, larger transactions
    amortize the per-commit fsync exactly as they do there, and
    {!Ifdb_txn.Group_commit} coalesces the commit fsyncs of {e small}
    transactions the same way.

    All operations are thread-safe: appends, fsyncs and stats reads are
    serialized on an internal mutex, so concurrent committers (the
    group-commit leader/follower protocol) and aborting sessions may
    touch one log. *)

type record =
  | Begin of int                       (** xid *)
  | Insert of string * int * int      (** table, vid, payload bytes *)
  | Delete of string * int            (** table, vid *)
  | Commit of int
  | Abort of int
  | Checkpoint
  | Audit of string                   (** rendered IFC audit event *)

type stats = {
  records : int;
  bytes : int;
  fsyncs : int;
  io_ns : int;
}

type t

val create : ?fsync_cost_ns:int -> unit -> t
(** Default fsync cost: 200 µs (battery-backed-cache ballpark). *)

val append : t -> record -> unit

val append_batch : t -> record list -> unit
(** Append a run of records under one lock acquisition — the buffered
    batch append used by bulk inserts.  Record and byte accounting is
    identical to appending each record individually. *)

val fsync : t -> unit
(** Force the log; called at commit (possibly once for a whole batch of
    coalesced commits).  When the calling domain carries a sampled
    {!Ifdb_obs.Span} context, the fsync is recorded as a ["wal.fsync"]
    span and reported to the observer below; otherwise no clock is
    read. *)

val set_fsync_observer : t -> (float -> unit) -> unit
(** Observer for fsync stalls, in seconds (wall time plus the modeled
    cost).  Only invoked for fsyncs issued under a sampled span
    context — a sampled view, like the span ring itself.  The database
    points this at its [ifdb_fsync_stall_seconds] histogram. *)

val stats : t -> stats
val reset_stats : t -> unit
val io_ns : t -> int

val recent : t -> int -> record list
(** The last [n] records, newest first (debugging and tests). *)

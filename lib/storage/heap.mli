(** MVCC heap storage for one table.

    Every update creates a new tuple version rather than overwriting
    (PostgreSQL-style multi-version concurrency control, which the
    paper leans on in section 7.1).  A version records [xmin], the
    transaction that created it, and [xmax], the transaction that
    deleted/superseded it (0 when live).  Visibility is decided above,
    by the transaction manager; the heap is policy-free.

    Versions are packed into {!Page}-sized pages; every access charges
    the owning page to the {!Buffer_pool}, which is how label bytes
    translate into extra I/O in the disk-bound benchmarks. *)

type version = {
  vid : int;                (** stable version id within this heap *)
  tuple : Ifdb_rel.Tuple.t;
  mutable xmin : int;       (** creating transaction *)
  mutable xmax : int;       (** deleting transaction, 0 if none *)
  page : int;               (** buffer-pool page holding this version *)
}

type t

val create :
  name:string -> labeled:bool -> pool:Buffer_pool.t -> unit -> t
(** [labeled] selects the tuple size model: with IFC on, labels cost
    4 bytes per tag on the page; the baseline stores no label bytes. *)

val name : t -> string
val pool : t -> Buffer_pool.t

val insert : t -> xmin:int -> Ifdb_rel.Tuple.t -> version
(** Append a new version (dirties its page). *)

val get : t -> int -> version
(** Fetch by version id (touches the page).  Raises [Invalid_argument]
    for dead or out-of-range ids. *)

val get_opt : t -> int -> version option

val set_xmax : t -> vid:int -> xid:int -> unit
(** Stamp a deleter (dirties the page). *)

val clear_xmax : t -> vid:int -> xid:int -> unit
(** Undo a deleter stamp if it is [xid] (abort path). *)

val iter : t -> (version -> unit) -> unit
(** Sequential scan in version order; charges each distinct page once
    per scan run. *)

val slot_count : t -> int
(** Upper bound of the version-id space: the partition domain for
    morsel-parallel scans (includes vacuumed holes, which scan as
    empty). *)

val scan_range : t -> lo:int -> hi:int -> (version -> unit) -> unit
(** [scan_range t ~lo ~hi f]: {!iter} restricted to version ids in
    [\[lo, hi)] — one morsel of a parallel scan.  Charges each distinct
    page once per call; morsels are called concurrently from worker
    domains, which is safe because versions are appended in page order
    (disjoint ranges touch mostly disjoint pages) and {!Buffer_pool}
    touches are thread-safe.  The [version] record fields read here
    ([vid], [tuple], [page]) are immutable after insert; [xmin]/[xmax]
    are mutated only by writer transactions, which never run
    concurrently with a read-only parallel scan. *)

val version_count : t -> int
(** Number of versions ever created and not vacuumed. *)

val page_count : t -> int

val vacuum : t -> dead:(version -> bool) -> int
(** Drop versions satisfying [dead]; returns how many were removed.
    The garbage collector is exempt from information flow rules
    (section 7.1) — it never inspects labels. *)

val tuple_bytes : t -> Ifdb_rel.Tuple.t -> int
(** Size of a tuple under this heap's size model. *)

val to_seq : t -> version Seq.t
(** Lazy sequential scan in version order; like {!iter}, charges each
    distinct page once per scan run. *)

val iter_label_counts : t -> (int -> int -> unit) -> unit
(** [iter_label_counts t f] calls [f label_id count] for each label-id
    partition with live (non-vacuumed) versions; uninterned tuples
    ([Tuple.label_id = -1]) are grouped under [-1].  A sequential scan
    uses this to decide the visibility of every distinct label once up
    front and skip whole invisible groups, instead of re-deciding per
    tuple.  Counts include versions awaiting vacuum, so the partition
    set is a superset of the visible labels — safe for pruning. *)

val distinct_label_count : t -> int
(** Number of distinct label-id partitions currently present. *)

(** MVCC heap storage for one table.

    Every update creates a new tuple version rather than overwriting
    (PostgreSQL-style multi-version concurrency control, which the
    paper leans on in section 7.1).  A version records [xmin], the
    transaction that created it, and [xmax], the transaction that
    deleted/superseded it (0 when live).  Visibility is decided above,
    by the transaction manager; the heap is policy-free.

    Versions are packed into {!Page}-sized pages; every access charges
    the owning page to the {!Buffer_pool}, which is how label bytes
    translate into extra I/O in the disk-bound benchmarks.

    {b Label partitions.}  The heap keeps a partition directory keyed
    by interned label id (-1 groups the uninterned): each partition
    records its slice of the vid space in ascending order, maintained
    incrementally on insert/vacuum — never rebuilt by scanning.  With
    [partitioned], each partition additionally owns its page run, so
    tuples under different labels never share a page and label
    confinement prunes whole page runs by construction; without it the
    heap keeps the classic shared append layout (the A/B baseline).
    The merged-scan primitives enumerate only the partitions a caller
    keeps, in global vid order — observably identical output to a flat
    scan plus a per-tuple label filter. *)

type version = {
  vid : int;                (** stable version id within this heap *)
  tuple : Ifdb_rel.Tuple.t;
  mutable xmin : int;       (** creating transaction *)
  mutable xmax : int;       (** deleting transaction, 0 if none *)
  page : int;               (** buffer-pool page holding this version *)
}

type t

val create :
  name:string ->
  labeled:bool ->
  pool:Buffer_pool.t ->
  ?partitioned:bool ->
  unit ->
  t
(** [labeled] selects the tuple size model: with IFC on, labels cost
    4 bytes per tag on the page; the baseline stores no label bytes.
    [partitioned] (default false) selects per-label-id page runs. *)

val partitioned : t -> bool

val name : t -> string
val pool : t -> Buffer_pool.t

val insert : t -> xmin:int -> Ifdb_rel.Tuple.t -> version
(** Append a new version (dirties its page). *)

val get : t -> int -> version
(** Fetch by version id (touches the page).  Raises [Invalid_argument]
    for dead or out-of-range ids. *)

val get_opt : t -> int -> version option

val set_xmax : t -> vid:int -> xid:int -> unit
(** Stamp a deleter (dirties the page). *)

val clear_xmax : t -> vid:int -> xid:int -> unit
(** Undo a deleter stamp if it is [xid] (abort path). *)

val iter : t -> (version -> unit) -> unit
(** Sequential scan in version order; charges each distinct page once
    per scan run. *)

val slot_count : t -> int
(** Upper bound of the version-id space: the partition domain for
    morsel-parallel scans (includes vacuumed holes, which scan as
    empty). *)

val scan_range : t -> lo:int -> hi:int -> (version -> unit) -> unit
(** [scan_range t ~lo ~hi f]: {!iter} restricted to version ids in
    [\[lo, hi)] — one morsel of a parallel scan.  Charges each distinct
    page once per call; morsels are called concurrently from worker
    domains, which is safe because versions are appended in page order
    (disjoint ranges touch mostly disjoint pages) and {!Buffer_pool}
    touches are thread-safe.  The [version] record fields read here
    ([vid], [tuple], [page]) are immutable after insert; [xmin]/[xmax]
    are mutated only by writer transactions, which never run
    concurrently with a read-only parallel scan. *)

val version_count : t -> int
(** Number of versions ever created and not vacuumed. *)

val page_count : t -> int

val vacuum : t -> dead:(version -> bool) -> int
(** Drop versions satisfying [dead]; returns how many were removed.
    The garbage collector is exempt from information flow rules
    (section 7.1) — it never inspects labels. *)

val tuple_bytes : t -> Ifdb_rel.Tuple.t -> int
(** Size of a tuple under this heap's size model. *)

val to_seq : t -> version Seq.t
(** Lazy sequential scan in version order; like {!iter}, charges each
    distinct page once per scan run. *)

(** {1 The label-partition directory} *)

val iter_label_counts : t -> (int -> int -> unit) -> unit
(** [iter_label_counts t f] calls [f label_id count] for each label-id
    partition with live (non-vacuumed) versions; uninterned tuples
    ([Tuple.label_id = -1]) are grouped under [-1].  A sequential scan
    uses this to decide the visibility of every distinct label once up
    front and skip whole invisible groups, instead of re-deciding per
    tuple.  Counts include versions awaiting vacuum, so the partition
    set is a superset of the visible labels — safe for pruning. *)

val distinct_label_count : t -> int
(** Number of distinct label-id partitions currently present. *)

val has_partition : t -> int -> bool
(** Does a partition with non-vacuumed versions exist for this label
    id?  Writers consult this {e before} inserting to decide whether
    the insert creates a new partition (which must conflict with
    concurrent full-table scans under serializable locking). *)

val retire_version : t -> lid:int -> unit
(** A version under [lid] stopped being live (its deleter committed,
    or its creating transaction aborted): decrement the partition's
    live count.  Stats only — scan pruning keys on the non-vacuumed
    count, which stays a sound superset for every open snapshot. *)

type partition_stats = {
  ps_lid : int;
  ps_versions : int; (** non-vacuumed versions *)
  ps_live : int;     (** versions not deleted-and-committed *)
  ps_pages : int;    (** pages owned (0 in the flat layout) *)
}

val partition_stats : t -> partition_stats list
(** Per-partition stats, sorted by label id; partitions whose versions
    were all vacuumed are omitted. *)

(** {1 Merged scans over selected partitions} *)

val iter_merge : t -> keep:(int -> bool) -> (version -> unit) -> unit
(** Scan only the partitions whose label id [keep] accepts, merged into
    global vid order — the same versions, in the same order, as {!iter}
    followed by a per-tuple label filter, but without ever touching a
    pruned partition's slots or pages. *)

val iter_merge_range :
  t -> keep:(int -> bool) -> lo:int -> hi:int -> (version -> unit) -> unit
(** {!iter_merge} restricted to vids in [\[lo, hi)] — one morsel of a
    pruned parallel scan.  Thread-safety mirrors {!scan_range}. *)

val seq_merge : t -> keep:(int -> bool) -> version Seq.t
(** Lazy {!iter_merge}. *)

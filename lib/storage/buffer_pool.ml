(* LRU via an intrusive doubly-linked list over nodes stored in a
   hashtable keyed by page id.  All operations are O(1).

   Thread-safety (for morsel-parallel scans): the statistics counters
   are atomics, and every structural operation takes [lock].  The one
   exception is the unbounded-pool read fast path: with no capacity
   there is never an eviction, so recency order is irrelevant and a
   touch of a resident page reduces to a lock-free hashtable probe plus
   an atomic hit count.  Pages are only inserted by [alloc_page], which
   runs on the (single) writer thread, never concurrently with a
   parallel scan — so the unlocked probe cannot race a table resize. *)

type node = {
  page : int;
  mutable prev : node option;
  mutable next : node option;
  mutable is_dirty : bool;
}

type stats = { hits : int; misses : int; page_writes : int; io_ns : int }

type t = {
  capacity : int option;
  miss_cost_ns : int;
  write_cost_ns : int;
  nodes : (int, node) Hashtbl.t;
  lock : Mutex.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable next_page : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  page_writes : int Atomic.t;
  io_ns : int Atomic.t;
}

let create ?(capacity_pages = None) ?(miss_cost_ns = 100_000)
    ?(write_cost_ns = 60_000) () =
  (match capacity_pages with
  | Some c when c < 1 -> invalid_arg "Buffer_pool.create: capacity must be >= 1"
  | _ -> ());
  {
    capacity = capacity_pages;
    miss_cost_ns;
    write_cost_ns;
    nodes = Hashtbl.create 4096;
    lock = Mutex.create ();
    head = None;
    tail = None;
    next_page = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    page_writes = Atomic.make 0;
    io_ns = Atomic.make 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let write_back t n =
  if n.is_dirty then begin
    Atomic.incr t.page_writes;
    ignore (Atomic.fetch_and_add t.io_ns t.write_cost_ns);
    n.is_dirty <- false
  end

let evict_if_needed t =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.nodes > cap do
        match t.tail with
        | None -> assert false
        | Some victim ->
            write_back t victim;
            unlink t victim;
            Hashtbl.remove t.nodes victim.page
      done

let insert_resident t page =
  let n = { page; prev = None; next = None; is_dirty = false } in
  Hashtbl.replace t.nodes page n;
  push_front t n;
  evict_if_needed t;
  n

let alloc_page t =
  Mutex.lock t.lock;
  let page = t.next_page in
  t.next_page <- t.next_page + 1;
  ignore (insert_resident t page);
  Mutex.unlock t.lock;
  page

(* caller holds [lock] *)
let access_locked t page =
  match Hashtbl.find_opt t.nodes page with
  | Some n ->
      Atomic.incr t.hits;
      if t.head != Some n then begin
        unlink t n;
        push_front t n
      end;
      n
  | None ->
      Atomic.incr t.misses;
      ignore (Atomic.fetch_and_add t.io_ns t.miss_cost_ns);
      insert_resident t page

let access t page =
  Mutex.lock t.lock;
  let n = access_locked t page in
  Mutex.unlock t.lock;
  n

let touch t page =
  match t.capacity with
  | None -> (
      (* unbounded: every allocated page stays resident, recency is
         moot — lock-free probe + atomic hit *)
      match Hashtbl.find_opt t.nodes page with
      | Some _ -> Atomic.incr t.hits
      | None -> ignore (access t page))
  | Some _ -> ignore (access t page)

let dirty t page =
  Mutex.lock t.lock;
  let n = access_locked t page in
  n.is_dirty <- true;
  Mutex.unlock t.lock

let flush_all t =
  Mutex.lock t.lock;
  Hashtbl.iter (fun _ n -> write_back t n) t.nodes;
  Mutex.unlock t.lock

let resident t = Hashtbl.length t.nodes

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    page_writes = Atomic.get t.page_writes;
    io_ns = Atomic.get t.io_ns;
  }

(* Read-and-zero with [Atomic.exchange] per counter: a concurrent
   [touch] lands in either the returned snapshot or the fresh epoch,
   never between the read and the zeroing (the old [Atomic.set] reset
   could drop such increments, letting a reader observe more hits than
   lookups across the reset). *)
let take_stats t =
  {
    hits = Atomic.exchange t.hits 0;
    misses = Atomic.exchange t.misses 0;
    page_writes = Atomic.exchange t.page_writes 0;
    io_ns = Atomic.exchange t.io_ns 0;
  }

let reset_stats t = ignore (take_stats t)

let io_ns t = Atomic.get t.io_ns

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d writes=%d io=%.3fms" s.hits s.misses
    s.page_writes
    (float_of_int s.io_ns /. 1e6)

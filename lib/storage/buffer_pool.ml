(* LRU via an intrusive doubly-linked list over nodes stored in a
   hashtable keyed by page id.  All operations are O(1). *)

type node = {
  page : int;
  mutable prev : node option;
  mutable next : node option;
  mutable is_dirty : bool;
}

type stats = { hits : int; misses : int; page_writes : int; io_ns : int }

type t = {
  capacity : int option;
  miss_cost_ns : int;
  write_cost_ns : int;
  nodes : (int, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable next_page : int;
  mutable hits : int;
  mutable misses : int;
  mutable page_writes : int;
  mutable io_ns : int;
}

let create ?(capacity_pages = None) ?(miss_cost_ns = 100_000)
    ?(write_cost_ns = 60_000) () =
  (match capacity_pages with
  | Some c when c < 1 -> invalid_arg "Buffer_pool.create: capacity must be >= 1"
  | _ -> ());
  {
    capacity = capacity_pages;
    miss_cost_ns;
    write_cost_ns;
    nodes = Hashtbl.create 4096;
    head = None;
    tail = None;
    next_page = 0;
    hits = 0;
    misses = 0;
    page_writes = 0;
    io_ns = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let write_back t n =
  if n.is_dirty then begin
    t.page_writes <- t.page_writes + 1;
    t.io_ns <- t.io_ns + t.write_cost_ns;
    n.is_dirty <- false
  end

let evict_if_needed t =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.nodes > cap do
        match t.tail with
        | None -> assert false
        | Some victim ->
            write_back t victim;
            unlink t victim;
            Hashtbl.remove t.nodes victim.page
      done

let insert_resident t page =
  let n = { page; prev = None; next = None; is_dirty = false } in
  Hashtbl.replace t.nodes page n;
  push_front t n;
  evict_if_needed t;
  n

let alloc_page t =
  let page = t.next_page in
  t.next_page <- t.next_page + 1;
  ignore (insert_resident t page);
  page

let access t page =
  match Hashtbl.find_opt t.nodes page with
  | Some n ->
      t.hits <- t.hits + 1;
      if t.head != Some n then begin
        unlink t n;
        push_front t n
      end;
      n
  | None ->
      t.misses <- t.misses + 1;
      t.io_ns <- t.io_ns + t.miss_cost_ns;
      insert_resident t page

let touch t page = ignore (access t page)

let dirty t page =
  let n = access t page in
  n.is_dirty <- true

let flush_all t =
  Hashtbl.iter (fun _ n -> write_back t n) t.nodes

let resident t = Hashtbl.length t.nodes

let stats t =
  { hits = t.hits; misses = t.misses; page_writes = t.page_writes; io_ns = t.io_ns }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.page_writes <- 0;
  t.io_ns <- 0

let io_ns t = t.io_ns

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d writes=%d io=%.3fms" s.hits s.misses
    s.page_writes
    (float_of_int s.io_ns /. 1e6)

(** An LRU buffer pool with a simulated I/O clock.

    The engine holds all data in memory; the pool tracks which pages
    {e would} be resident given a capacity, and charges a simulated
    latency for each miss (page read) and each dirty eviction (page
    write).  Benchmarks report throughput against wall time plus the
    pool's accumulated I/O time, which reproduces the paper's
    disk-bound vs in-memory regimes (sections 8.2-8.3) without a disk.

    A pool with [capacity_pages = None] is unbounded: after first
    allocation every access hits — the in-memory regime.

    Concurrent reads: {!touch} may be called from multiple domains at
    once (morsel-parallel scans).  Counters are atomic; bounded pools
    serialize LRU maintenance behind a mutex, unbounded pools answer
    resident touches lock-free.  Mutating operations ({!alloc_page},
    {!dirty}, {!flush_all}) remain single-writer: the engine only
    parallelizes read-only plans within a snapshot. *)

type t

type stats = {
  hits : int;
  misses : int;
  page_writes : int;  (** dirty evictions *)
  io_ns : int;        (** accumulated simulated I/O nanoseconds *)
}

val create :
  ?capacity_pages:int option ->
  ?miss_cost_ns:int ->
  ?write_cost_ns:int ->
  unit ->
  t
(** Defaults: unbounded capacity; 100 µs per miss and 60 µs per page
    write (commodity-SSD ballpark; the RAID in the paper is slower,
    the shape is what matters). *)

val alloc_page : t -> int
(** Allocate a fresh page id, resident and clean. *)

val touch : t -> int -> unit
(** Read access: LRU hit, or miss (charged) with reload. *)

val dirty : t -> int -> unit
(** Write access: like {!touch} and marks the page dirty; a dirty page
    pays the write cost when evicted (or flushed). *)

val flush_all : t -> unit
(** Write out every dirty resident page (checkpoint). *)

val resident : t -> int
(** Number of resident pages. *)

val stats : t -> stats

val take_stats : t -> stats
(** Read and zero the counters as one atomic pair per counter
    ([Atomic.exchange]): an increment racing the call lands in exactly
    one epoch — the returned snapshot or the fresh counts.  Use this
    (not {!stats} + {!reset_stats}) when sampling deltas concurrently
    with parallel scans. *)

val reset_stats : t -> unit
(** [reset_stats t = ignore (take_stats t)]. *)

val io_ns : t -> int
(** Shorthand for [(stats t).io_ns]. *)

val pp_stats : Format.formatter -> stats -> unit

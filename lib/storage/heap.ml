type version = {
  vid : int;
  tuple : Ifdb_rel.Tuple.t;
  mutable xmin : int;
  mutable xmax : int;
  page : int;
}

(* One label partition of a heap: the versions carrying one interned
   label id (-1 groups the uninterned).  [p_vids] is the partition's
   slice of the vid space in ascending order — the authoritative
   directory a pruned scan enumerates instead of filtering per tuple.
   The directory is maintained in both layouts; [partitioned] only
   selects whether the partition also owns its page run. *)
type partition = {
  p_lid : int;
  mutable p_vids : int array; (* ascending, append-only *)
  mutable p_len : int;        (* appended versions (including vacuumed) *)
  mutable p_count : int;      (* non-vacuumed versions *)
  mutable p_live : int;       (* versions not yet deleted-and-committed *)
  mutable p_current_page : int; (* -1 until the first insert *)
  mutable p_page_used : int;
  mutable p_pages : int;
}

type t = {
  heap_name : string;
  labeled : bool;
  partitioned : bool;
      (* physically shard pages by label id: each partition appends to
         its own page run, so label confinement prunes whole page runs
         instead of filtering tuples off shared pages *)
  bp : Buffer_pool.t;
  mutable slots : version option array;
  mutable len : int;
  mutable current_page : int; (* flat layout only *)
  mutable page_used : int;
  mutable pages : int;
  (* label-id partition directory, keyed by interned label id (-1
     groups the uninterned).  A sequential scan reads this to decide
     each distinct label once instead of per tuple; distinct labels are
     few (the paper saw 0-2 tags per tuple and a handful of label
     shapes per table).  Maintained incrementally on insert, vacuum and
     commit/abort — never rebuilt by scanning the heap. *)
  parts : (int, partition) Hashtbl.t;
}

let create ~name ~labeled ~pool ?(partitioned = false) () =
  {
    heap_name = name;
    labeled;
    partitioned;
    bp = pool;
    slots = Array.make 64 None;
    len = 0;
    current_page = (if partitioned then -1 else Buffer_pool.alloc_page pool);
    page_used = 0;
    pages = (if partitioned then 0 else 1);
    parts = Hashtbl.create 8;
  }

let partitioned t = t.partitioned

let partition_of t lid =
  match Hashtbl.find_opt t.parts lid with
  | Some p -> p
  | None ->
      let p =
        {
          p_lid = lid;
          p_vids = Array.make 8 0;
          p_len = 0;
          p_count = 0;
          p_live = 0;
          p_current_page = -1;
          p_page_used = 0;
          p_pages = 0;
        }
      in
      Hashtbl.add t.parts lid p;
      p

let has_partition t lid =
  match Hashtbl.find_opt t.parts lid with
  | Some p -> p.p_count > 0
  | None -> false

let iter_label_counts t f =
  Hashtbl.iter (fun lid p -> if p.p_count > 0 then f lid p.p_count) t.parts

let distinct_label_count t =
  Hashtbl.fold (fun _ p n -> if p.p_count > 0 then n + 1 else n) t.parts 0

let retire_version t ~lid =
  match Hashtbl.find_opt t.parts lid with
  | Some p -> if p.p_live > 0 then p.p_live <- p.p_live - 1
  | None -> ()

type partition_stats = {
  ps_lid : int;
  ps_versions : int; (* non-vacuumed versions *)
  ps_live : int;     (* versions not deleted-and-committed *)
  ps_pages : int;    (* pages owned (0 in the flat layout) *)
}

let partition_stats t =
  Hashtbl.fold
    (fun lid p acc ->
      if p.p_count > 0 then
        { ps_lid = lid; ps_versions = p.p_count; ps_live = p.p_live;
          ps_pages = p.p_pages }
        :: acc
      else acc)
    t.parts []
  |> List.sort (fun a b -> compare a.ps_lid b.ps_lid)

let name t = t.heap_name
let pool t = t.bp

let tuple_bytes t tuple =
  if t.labeled then Ifdb_rel.Tuple.byte_size tuple
  else Ifdb_rel.Tuple.byte_size_unlabeled tuple

let grow t =
  if t.len >= Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 bigger 0 t.len;
    t.slots <- bigger
  end

let insert t ~xmin tuple =
  let bytes = tuple_bytes t tuple in
  let p = partition_of t (Ifdb_rel.Tuple.label_id tuple) in
  let page =
    if t.partitioned then begin
      (* per-partition page run: tuples under one label never share a
         page with another label's, so pruning a partition skips its
         pages entirely *)
      if
        p.p_current_page < 0
        || not (Page.fits ~used:p.p_page_used ~tuple_bytes:bytes)
      then begin
        p.p_current_page <- Buffer_pool.alloc_page t.bp;
        p.p_page_used <- 0;
        p.p_pages <- p.p_pages + 1;
        t.pages <- t.pages + 1
      end;
      p.p_page_used <- p.p_page_used + bytes + Page.item_overhead;
      p.p_current_page
    end
    else begin
      if not (Page.fits ~used:t.page_used ~tuple_bytes:bytes) then begin
        t.current_page <- Buffer_pool.alloc_page t.bp;
        t.page_used <- 0;
        t.pages <- t.pages + 1
      end;
      t.page_used <- t.page_used + bytes + Page.item_overhead;
      t.current_page
    end
  in
  grow t;
  let v = { vid = t.len; tuple; xmin; xmax = 0; page } in
  t.slots.(t.len) <- Some v;
  t.len <- t.len + 1;
  if p.p_len >= Array.length p.p_vids then begin
    let bigger = Array.make (2 * Array.length p.p_vids) 0 in
    Array.blit p.p_vids 0 bigger 0 p.p_len;
    p.p_vids <- bigger
  end;
  p.p_vids.(p.p_len) <- v.vid;
  p.p_len <- p.p_len + 1;
  p.p_count <- p.p_count + 1;
  p.p_live <- p.p_live + 1;
  Buffer_pool.dirty t.bp v.page;
  v

let get_opt t vid =
  if vid < 0 || vid >= t.len then None
  else
    match t.slots.(vid) with
    | None -> None
    | Some v ->
        Buffer_pool.touch t.bp v.page;
        Some v

let get t vid =
  match get_opt t vid with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Heap.get(%s): no version %d" t.heap_name vid)

let set_xmax t ~vid ~xid =
  let v = get t vid in
  v.xmax <- xid;
  Buffer_pool.dirty t.bp v.page

let clear_xmax t ~vid ~xid =
  match t.slots.(vid) with
  | Some v when v.xmax = xid ->
      v.xmax <- 0;
      Buffer_pool.dirty t.bp v.page
  | Some _ | None -> ()

let iter t f =
  let last_page = ref (-1) in
  for i = 0 to t.len - 1 do
    match t.slots.(i) with
    | None -> ()
    | Some v ->
        if v.page <> !last_page then begin
          Buffer_pool.touch t.bp v.page;
          last_page := v.page
        end;
        f v
  done

let slot_count t = t.len

let scan_range t ~lo ~hi f =
  let lo = max 0 lo and hi = min hi t.len in
  let last_page = ref (-1) in
  for i = lo to hi - 1 do
    match t.slots.(i) with
    | None -> ()
    | Some v ->
        if v.page <> !last_page then begin
          Buffer_pool.touch t.bp v.page;
          last_page := v.page
        end;
        f v
  done

let version_count t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if t.slots.(i) <> None then incr n
  done;
  !n

let page_count t = t.pages

let vacuum t ~dead =
  let removed = ref 0 in
  for i = 0 to t.len - 1 do
    match t.slots.(i) with
    | Some v when dead v ->
        t.slots.(i) <- None;
        (match
           Hashtbl.find_opt t.parts (Ifdb_rel.Tuple.label_id v.tuple)
         with
        | Some p -> p.p_count <- p.p_count - 1
        | None -> ());
        incr removed
    | Some _ | None -> ()
  done;
  !removed

let to_seq t =
  let last_page = ref (-1) in
  let rec from i () =
    if i >= t.len then Seq.Nil
    else
      match t.slots.(i) with
      | None -> from (i + 1) ()
      | Some v ->
          if v.page <> !last_page then begin
            Buffer_pool.touch t.bp v.page;
            last_page := v.page
          end;
          Seq.Cons (v, from (i + 1))
  in
  from 0

(* --- merged scans over selected partitions -------------------------

   A pruned scan enumerates only the partitions [keep] accepts, but it
   must produce versions in {e global vid order} so partitioned and
   flat layouts are observably identical (the parallel executor and the
   QCheck equivalence properties both compare exact output order).
   Each partition's vid directory is ascending, so a k-way cursor merge
   reproduces the flat order while never touching a pruned partition's
   slots or pages. *)

(* the kept partitions, with a cursor positioned at the first vid >=
   [lo]; partitions with no vids in [lo, hi) drop out *)
let merge_cursors t ~keep ~lo ~hi =
  Hashtbl.fold
    (fun lid p acc ->
      if p.p_count > 0 && keep lid then begin
        (* binary search for the first directory position with vid >= lo *)
        let a = ref 0 and b = ref p.p_len in
        while !a < !b do
          let m = (!a + !b) / 2 in
          if p.p_vids.(m) < lo then a := m + 1 else b := m
        done;
        if !a < p.p_len && p.p_vids.(!a) < hi then (p, ref !a) :: acc
        else acc
      end
      else acc)
    t.parts []

let iter_merge_range t ~keep ~lo ~hi f =
  let lo = max 0 lo and hi = min hi t.len in
  let cursors = ref (merge_cursors t ~keep ~lo ~hi) in
  let last_page = ref (-1) in
  while !cursors <> [] do
    (* pick the cursor holding the smallest next vid; partitions are
       few, so a linear min beats a heap *)
    let best = ref (List.hd !cursors) in
    List.iter
      (fun ((p, pos) as c) ->
        let bp, bpos = !best in
        if p.p_vids.(!pos) < bp.p_vids.(!bpos) then best := c)
      (List.tl !cursors);
    let p, pos = !best in
    let vid = p.p_vids.(!pos) in
    incr pos;
    if !pos >= p.p_len || p.p_vids.(!pos) >= hi then
      cursors := List.filter (fun (q, _) -> q != p) !cursors;
    (match t.slots.(vid) with
    | None -> () (* vacuumed since the directory entry was appended *)
    | Some v ->
        if v.page <> !last_page then begin
          Buffer_pool.touch t.bp v.page;
          last_page := v.page
        end;
        f v)
  done

let iter_merge t ~keep f = iter_merge_range t ~keep ~lo:0 ~hi:t.len f

let seq_merge t ~keep : version Seq.t =
  let cursors = ref (merge_cursors t ~keep ~lo:0 ~hi:t.len) in
  let last_page = ref (-1) in
  let rec next () =
    match !cursors with
    | [] -> Seq.Nil
    | first :: rest ->
        let best = ref first in
        List.iter
          (fun ((p, pos) as c) ->
            let bp, bpos = !best in
            if p.p_vids.(!pos) < bp.p_vids.(!bpos) then best := c)
          rest;
        let p, pos = !best in
        let vid = p.p_vids.(!pos) in
        incr pos;
        if !pos >= p.p_len then
          cursors := List.filter (fun (q, _) -> q != p) !cursors;
        (match t.slots.(vid) with
        | None -> next ()
        | Some v ->
            if v.page <> !last_page then begin
              Buffer_pool.touch t.bp v.page;
              last_page := v.page
            end;
            Seq.Cons (v, next))
  in
  next

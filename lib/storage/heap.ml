type version = {
  vid : int;
  tuple : Ifdb_rel.Tuple.t;
  mutable xmin : int;
  mutable xmax : int;
  page : int;
}

type t = {
  heap_name : string;
  labeled : bool;
  bp : Buffer_pool.t;
  mutable slots : version option array;
  mutable len : int;
  mutable current_page : int;
  mutable page_used : int;
  mutable pages : int;
  (* label-id partition counts: how many (non-vacuumed) versions carry
     each interned label id (-1 groups the uninterned).  A sequential
     scan reads this to decide each distinct label once instead of
     per tuple; distinct labels are few (the paper saw 0-2 tags per
     tuple and a handful of label shapes per table). *)
  label_counts : (int, int) Hashtbl.t;
}

let create ~name ~labeled ~pool () =
  {
    heap_name = name;
    labeled;
    bp = pool;
    slots = Array.make 64 None;
    len = 0;
    current_page = Buffer_pool.alloc_page pool;
    page_used = 0;
    pages = 1;
    label_counts = Hashtbl.create 8;
  }

let bump_label_count t lid delta =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.label_counts lid) in
  let now = cur + delta in
  if now <= 0 then Hashtbl.remove t.label_counts lid
  else Hashtbl.replace t.label_counts lid now

let iter_label_counts t f = Hashtbl.iter f t.label_counts
let distinct_label_count t = Hashtbl.length t.label_counts

let name t = t.heap_name
let pool t = t.bp

let tuple_bytes t tuple =
  if t.labeled then Ifdb_rel.Tuple.byte_size tuple
  else Ifdb_rel.Tuple.byte_size_unlabeled tuple

let grow t =
  if t.len >= Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 bigger 0 t.len;
    t.slots <- bigger
  end

let insert t ~xmin tuple =
  let bytes = tuple_bytes t tuple in
  if not (Page.fits ~used:t.page_used ~tuple_bytes:bytes) then begin
    t.current_page <- Buffer_pool.alloc_page t.bp;
    t.page_used <- 0;
    t.pages <- t.pages + 1
  end;
  t.page_used <- t.page_used + bytes + Page.item_overhead;
  grow t;
  let v = { vid = t.len; tuple; xmin; xmax = 0; page = t.current_page } in
  t.slots.(t.len) <- Some v;
  t.len <- t.len + 1;
  bump_label_count t (Ifdb_rel.Tuple.label_id tuple) 1;
  Buffer_pool.dirty t.bp v.page;
  v

let get_opt t vid =
  if vid < 0 || vid >= t.len then None
  else
    match t.slots.(vid) with
    | None -> None
    | Some v ->
        Buffer_pool.touch t.bp v.page;
        Some v

let get t vid =
  match get_opt t vid with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Heap.get(%s): no version %d" t.heap_name vid)

let set_xmax t ~vid ~xid =
  let v = get t vid in
  v.xmax <- xid;
  Buffer_pool.dirty t.bp v.page

let clear_xmax t ~vid ~xid =
  match t.slots.(vid) with
  | Some v when v.xmax = xid ->
      v.xmax <- 0;
      Buffer_pool.dirty t.bp v.page
  | Some _ | None -> ()

let iter t f =
  let last_page = ref (-1) in
  for i = 0 to t.len - 1 do
    match t.slots.(i) with
    | None -> ()
    | Some v ->
        if v.page <> !last_page then begin
          Buffer_pool.touch t.bp v.page;
          last_page := v.page
        end;
        f v
  done

let slot_count t = t.len

let scan_range t ~lo ~hi f =
  let lo = max 0 lo and hi = min hi t.len in
  let last_page = ref (-1) in
  for i = lo to hi - 1 do
    match t.slots.(i) with
    | None -> ()
    | Some v ->
        if v.page <> !last_page then begin
          Buffer_pool.touch t.bp v.page;
          last_page := v.page
        end;
        f v
  done

let version_count t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if t.slots.(i) <> None then incr n
  done;
  !n

let page_count t = t.pages

let vacuum t ~dead =
  let removed = ref 0 in
  for i = 0 to t.len - 1 do
    match t.slots.(i) with
    | Some v when dead v ->
        t.slots.(i) <- None;
        bump_label_count t (Ifdb_rel.Tuple.label_id v.tuple) (-1);
        incr removed
    | Some _ | None -> ()
  done;
  !removed

let to_seq t =
  let last_page = ref (-1) in
  let rec from i () =
    if i >= t.len then Seq.Nil
    else
      match t.slots.(i) with
      | None -> from (i + 1) ()
      | Some v ->
          if v.page <> !last_page then begin
            Buffer_pool.touch t.bp v.page;
            last_page := v.page
          end;
          Seq.Cons (v, from (i + 1))
  in
  from 0

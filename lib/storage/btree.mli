(** An in-memory B+tree index mapping composite keys to tuple-version
    ids.

    Keys are value vectors ([Value.t array]) compared lexicographically.
    A key maps to a {e set} of version ids: MVCC keeps superseded
    versions indexed until vacuum, and polyinstantiation (section
    5.2.1) deliberately stores several tuples under one user-visible
    key, distinguished only by label.  Uniqueness is therefore enforced
    above this layer, where visibility and labels are known — exactly
    as in PostgreSQL, whose unique indexes "already had to be prepared
    to deal with multiple versions" (section 7.1).

    Deletion is lazy (empty postings stay until overwritten); leaves
    are chained for range scans. *)

type key = Ifdb_rel.Value.t array

type t

val create : ?order:int -> unit -> t
(** [order] is the maximum number of keys per node (default 32). *)

val compare_key : key -> key -> int
(** Lexicographic over {!Ifdb_rel.Value.compare}; shorter prefixes sort
    before their extensions. *)

val insert : t -> key -> int -> unit
(** Add a (key, vid) posting.  Duplicate postings are ignored. *)

val insert_many : t -> (key * int) list -> unit
(** Sorted bulk load: sort the run once, group postings per key, and
    descend each subtree once instead of once per pair, rebuilding
    leaves by sorted merge and splitting overfull nodes into several
    siblings in one pass.  Observably equivalent to {!insert} applied
    to each pair in run order (same postings, same iteration order,
    same {!entry_count}); duplicates are ignored likewise. *)

val remove : t -> key -> int -> unit
(** Remove one posting (no-op if absent). *)

val find : t -> key -> int list
(** All vids posted under exactly this key. *)

type bound =
  | Unbounded
  | Incl of key
  | Excl of key

val iter_range : t -> lo:bound -> hi:bound -> (key -> int -> unit) -> unit
(** In-order iteration over postings with keys in the given range. *)

val iter_prefix : t -> prefix:key -> (key -> int -> unit) -> unit
(** Postings whose key starts with [prefix] (component-wise equality
    over the prefix length). *)

val iter_all : t -> (key -> int -> unit) -> unit

val entry_count : t -> int
(** Number of live (key, vid) postings. *)

val depth : t -> int

val check_invariants : t -> (unit, string) result
(** Structural validation for tests: sortedness, separator bounds,
    balanced depth, node fill. *)

val iter_prefix_range :
  t ->
  prefix:key ->
  lo:(Ifdb_rel.Value.t * bool) option ->
  hi:(Ifdb_rel.Value.t * bool) option ->
  (key -> int -> unit) ->
  unit
(** Postings whose key starts with [prefix] and whose next component
    falls within the given bounds (each [(v, incl)] pair is a bound and
    whether it is inclusive).  With both bounds [None] this is
    {!iter_prefix}. *)

val seq_prefix : t -> prefix:key -> (key * int) Seq.t
(** Lazy {!iter_prefix}: postings are produced on demand, so consumers
    that stop early (LIMIT, probe joins) never walk the rest of the
    leaf chain and nothing is materialized per scan.  The sequence
    reads the live tree; restart it rather than reusing it across
    mutations. *)

val seq_prefix_range :
  t ->
  prefix:key ->
  lo:(Ifdb_rel.Value.t * bool) option ->
  hi:(Ifdb_rel.Value.t * bool) option ->
  (key * int) Seq.t
(** Lazy {!iter_prefix_range}. *)

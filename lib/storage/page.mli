(** Page geometry.

    The storage cost model is page-granular, like PostgreSQL's: heap
    tuples are packed into fixed-size pages and I/O is charged per
    page.  Label bytes enlarge tuples, which lowers tuples-per-page and
    raises page traffic — the mechanism behind the disk-bound slope in
    the paper's Figure 6 (section 8.3). *)

val size : int
(** Page size in bytes (8192, PostgreSQL's default). *)

val header_bytes : int
(** Per-page header overhead (24 bytes). *)

val usable : int
(** [size - header_bytes]. *)

val item_overhead : int
(** Per-tuple line-pointer overhead (4 bytes). *)

val tuples_per_page : tuple_bytes:int -> int
(** How many tuples of the given size fit on one page (at least 1). *)

val fits : used:int -> tuple_bytes:int -> bool
(** Does a tuple of [tuple_bytes] fit on a page already holding
    [used] payload bytes? *)

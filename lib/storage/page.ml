let size = 8192
let header_bytes = 24
let usable = size - header_bytes
let item_overhead = 4

let tuples_per_page ~tuple_bytes =
  max 1 (usable / (tuple_bytes + item_overhead))

let fits ~used ~tuple_bytes = used + tuple_bytes + item_overhead <= usable

type key = Ifdb_rel.Value.t array

let compare_key (a : key) (b : key) =
  let na = Array.length a and nb = Array.length b in
  let n = min na nb in
  let rec go i =
    if i >= n then Int.compare na nb
    else
      let c = Ifdb_rel.Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Compare a full key against a prefix: only the prefix components
   participate, so equality means "key extends prefix". *)
let compare_to_prefix (k : key) (prefix : key) =
  let np = Array.length prefix in
  let rec go i =
    if i >= np then 0
    else
      let c = Ifdb_rel.Value.compare k.(i) prefix.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

type node =
  | Leaf of leaf
  | Internal of internal

and leaf = {
  mutable keys : key array;
  mutable postings : int list array; (* parallel to keys *)
  mutable next : leaf option;
}

and internal = {
  mutable seps : key array;      (* n-1 separators for n children *)
  mutable children : node array;
}

type t = {
  order : int;
  mutable root : node;
  mutable entries : int;
}

let create ?(order = 32) () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  {
    order;
    root = Leaf { keys = [||]; postings = [||]; next = None };
    entries = 0;
  }

(* Position of the first element of [keys] that is >= [k] (binary search). *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to descend into for key [k]: first separator > k gives
   its left child; separators equal to k route right (separator is the
   lowest key of the right subtree). *)
let child_index seps k =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  let out = Array.make (n + 1) x in
  Array.blit a 0 out 0 i;
  Array.blit a i out (i + 1) (n - i);
  out

let array_remove a i =
  let n = Array.length a in
  let out = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) out i (n - 1 - i);
  out

(* Returns Some (separator, right sibling) if the node split. *)
let rec insert_into t node k vid =
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys && compare_key l.keys.(i) k = 0 then begin
        if not (List.mem vid l.postings.(i)) then begin
          l.postings.(i) <- vid :: l.postings.(i);
          t.entries <- t.entries + 1
        end;
        None
      end
      else begin
        l.keys <- array_insert l.keys i k;
        l.postings <- array_insert l.postings i [ vid ];
        t.entries <- t.entries + 1;
        if Array.length l.keys <= t.order then None
        else begin
          let mid = Array.length l.keys / 2 in
          let right =
            {
              keys = Array.sub l.keys mid (Array.length l.keys - mid);
              postings = Array.sub l.postings mid (Array.length l.postings - mid);
              next = l.next;
            }
          in
          l.keys <- Array.sub l.keys 0 mid;
          l.postings <- Array.sub l.postings 0 mid;
          l.next <- Some right;
          Some (right.keys.(0), Leaf right)
        end
      end
  | Internal n -> (
      let ci = child_index n.seps k in
      match insert_into t n.children.(ci) k vid with
      | None -> None
      | Some (sep, right) ->
          n.seps <- array_insert n.seps ci sep;
          n.children <- array_insert n.children (ci + 1) right;
          if Array.length n.children <= t.order then None
          else begin
            let midc = Array.length n.children / 2 in
            (* children midc.. go right; separator midc-1 is promoted *)
            let promoted = n.seps.(midc - 1) in
            let right_node =
              {
                seps = Array.sub n.seps midc (Array.length n.seps - midc);
                children =
                  Array.sub n.children midc (Array.length n.children - midc);
              }
            in
            n.seps <- Array.sub n.seps 0 (midc - 1);
            n.children <- Array.sub n.children 0 midc;
            Some (promoted, Internal right_node)
          end)

let insert t k vid =
  match insert_into t t.root k vid with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] }

(* ---- sorted bulk load ----------------------------------------------

   [insert_many] sorts the run once, groups postings per key, and makes
   a single descent per subtree instead of one root-to-leaf walk per
   key.  Leaves are rebuilt by merging sorted arrays; an overfull node
   splits into several near-equal chunks at once (a "multi-split"),
   with the extra (separator, sibling) pairs propagated up in one pass.
   The result is observably identical to inserting each pair with
   {!insert} in run order. *)

(* Near-equal chunk sizes, each <= order (and >= order/2 when the total
   exceeds order, keeping nodes respectably full). *)
let chunk_sizes n order =
  let nchunks = (n + order - 1) / order in
  let base = n / nchunks and rem = n mod nchunks in
  List.init nchunks (fun i -> if i < rem then base + 1 else base)

let take_chunks xs sizes =
  let rec take n acc xs =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec go xs = function
    | [] -> []
    | s :: sizes ->
        let chunk, rest = take s [] xs in
        chunk :: go rest sizes
  in
  go xs sizes

let insert_many t pairs =
  if pairs <> [] then begin
    (* stable sort on the key alone: vids keep their run order within a
       key, so the prepend fold below builds exactly the postings list
       sequential inserts would (latest arrival first) *)
    let sorted =
      List.stable_sort (fun (k1, _) (k2, _) -> compare_key k1 k2) pairs
    in
    let groups =
      let rec go acc = function
        | [] -> List.rev_map (fun (k, vs) -> (k, List.rev vs)) acc
        | (k, v) :: rest -> (
            match acc with
            | (k', vs) :: acc' when compare_key k' k = 0 ->
                if List.mem v vs then go acc rest
                else go ((k', v :: vs) :: acc') rest
            | _ -> go ((k, [ v ]) :: acc) rest)
      in
      go [] sorted
    in
    let added = ref 0 in
    let merge_postings existing vids =
      List.fold_left
        (fun ps v ->
          if List.mem v ps then ps
          else begin
            incr added;
            v :: ps
          end)
        existing vids
    in
    (* A "cell" is a child with the separator to its left (None for the
       leftmost).  [node_of_cells] turns a run of cells back into the
       (seps, children) arrays of an internal node. *)
    let node_of_cells cells =
      let children = Array.of_list (List.map snd cells) in
      let seps =
        Array.of_list
          (List.map (fun (s, _) -> Option.get s) (List.tl cells))
      in
      (seps, children)
    in
    (* Split an overfull cell run: the first chunk stays in place (the
       caller keeps its existing parent pointer), later chunks become
       new right siblings whose leading separator is promoted. *)
    let split_cells cells =
      match take_chunks cells (chunk_sizes (List.length cells) t.order) with
      | [] -> assert false
      | first :: rest ->
          let extras =
            List.map
              (fun chunk ->
                match chunk with
                | (Some promoted, _) :: _ ->
                    let seps, children = node_of_cells chunk in
                    (promoted, Internal { seps; children })
                | _ -> assert false)
              rest
          in
          (first, extras)
    in
    (* Returns the (separator, new right sibling) pairs this subtree
       spilled, ascending; [] when everything fit. *)
    let rec bulk node groups =
      match node with
      | Leaf l ->
          let n = Array.length l.keys in
          (* merge the sorted existing entries with the sorted groups *)
          let merged =
            let rec go i groups acc =
              match groups with
              | [] ->
                  let rec rest j acc =
                    if j >= n then List.rev acc
                    else rest (j + 1) ((l.keys.(j), l.postings.(j)) :: acc)
                  in
                  rest i acc
              | (gk, vids) :: gr ->
                  if i >= n then
                    go i gr ((gk, merge_postings [] vids) :: acc)
                  else
                    let c = compare_key l.keys.(i) gk in
                    if c < 0 then
                      go (i + 1) groups ((l.keys.(i), l.postings.(i)) :: acc)
                    else if c = 0 then
                      go (i + 1) gr
                        ((gk, merge_postings l.postings.(i) vids) :: acc)
                    else go i gr ((gk, merge_postings [] vids) :: acc)
            in
            go 0 groups []
          in
          let total = List.length merged in
          if total <= t.order then begin
            l.keys <- Array.of_list (List.map fst merged);
            l.postings <- Array.of_list (List.map snd merged);
            []
          end
          else begin
            match take_chunks merged (chunk_sizes total t.order) with
            | [] -> assert false
            | first :: rest ->
                l.keys <- Array.of_list (List.map fst first);
                l.postings <- Array.of_list (List.map snd first);
                let after = l.next in
                (* build right-to-left so each new leaf chains forward *)
                let rec build = function
                  | [] -> (after, [])
                  | chunk :: more ->
                      let nx, extras = build more in
                      let leaf =
                        {
                          keys = Array.of_list (List.map fst chunk);
                          postings = Array.of_list (List.map snd chunk);
                          next = nx;
                        }
                      in
                      (Some leaf, (leaf.keys.(0), Leaf leaf) :: extras)
                in
                let nx, extras = build rest in
                l.next <- nx;
                extras
          end
      | Internal nd ->
          let nseps = Array.length nd.seps in
          let slices = Array.make (Array.length nd.children) [] in
          (* child i takes keys < seps.(i) (a key equal to a separator
             routes right, matching [child_index]) *)
          let rec distribute i groups =
            if i >= nseps then slices.(i) <- groups
            else begin
              let rec span acc = function
                | ((k, _) as g) :: rest when compare_key k nd.seps.(i) < 0 ->
                    span (g :: acc) rest
                | rest -> (List.rev acc, rest)
              in
              let mine, rest = span [] groups in
              slices.(i) <- mine;
              distribute (i + 1) rest
            end
          in
          distribute 0 groups;
          let cells = ref [] in
          Array.iteri
            (fun i child ->
              let sep = if i = 0 then None else Some nd.seps.(i - 1) in
              cells := (sep, child) :: !cells;
              if slices.(i) <> [] then
                List.iter
                  (fun (s, spilled) -> cells := (Some s, spilled) :: !cells)
                  (bulk child slices.(i)))
            nd.children;
          let cells = List.rev !cells in
          if List.length cells <= t.order then begin
            let seps, children = node_of_cells cells in
            nd.seps <- seps;
            nd.children <- children;
            []
          end
          else begin
            let first, extras = split_cells cells in
            let seps, children = node_of_cells first in
            nd.seps <- seps;
            nd.children <- children;
            extras
          end
    in
    let rec grow extras =
      match extras with
      | [] -> ()
      | _ ->
          let cells =
            (None, t.root) :: List.map (fun (s, nd) -> (Some s, nd)) extras
          in
          if List.length cells <= t.order then begin
            let seps, children = node_of_cells cells in
            t.root <- Internal { seps; children }
          end
          else begin
            let first, extras' = split_cells cells in
            let seps, children = node_of_cells first in
            t.root <- Internal { seps; children };
            grow extras'
          end
    in
    grow (bulk t.root groups);
    t.entries <- t.entries + !added
  end

let rec find_leaf node k =
  match node with
  | Leaf l -> l
  | Internal n -> find_leaf n.children.(child_index n.seps k) k

let find t k =
  let l = find_leaf t.root k in
  let i = lower_bound l.keys k in
  if i < Array.length l.keys && compare_key l.keys.(i) k = 0 then l.postings.(i)
  else []

let remove t k vid =
  let l = find_leaf t.root k in
  let i = lower_bound l.keys k in
  if i < Array.length l.keys && compare_key l.keys.(i) k = 0 then begin
    let before = l.postings.(i) in
    let after = List.filter (fun v -> v <> vid) before in
    if List.length after < List.length before then begin
      t.entries <- t.entries - 1;
      if after = [] then begin
        l.keys <- array_remove l.keys i;
        l.postings <- array_remove l.postings i
      end
      else l.postings.(i) <- after
    end
  end

type bound = Unbounded | Incl of key | Excl of key

let leftmost_leaf node =
  let rec go = function
    | Leaf l -> l
    | Internal n -> go n.children.(0)
  in
  go node

let iter_range t ~lo ~hi f =
  let start_leaf, start_idx =
    match lo with
    | Unbounded -> (leftmost_leaf t.root, 0)
    | Incl k | Excl k ->
        let l = find_leaf t.root k in
        let i = lower_bound l.keys k in
        let i =
          match lo with
          | Excl _ when i < Array.length l.keys && compare_key l.keys.(i) k = 0 ->
              i + 1
          | _ -> i
        in
        (l, i)
  in
  let past_hi k =
    match hi with
    | Unbounded -> false
    | Incl h -> compare_key k h > 0
    | Excl h -> compare_key k h >= 0
  in
  let rec walk leaf idx =
    if idx >= Array.length leaf.keys then
      match leaf.next with None -> () | Some nx -> walk nx 0
    else begin
      let k = leaf.keys.(idx) in
      if not (past_hi k) then begin
        List.iter (fun vid -> f k vid) (List.rev leaf.postings.(idx));
        walk leaf (idx + 1)
      end
    end
  in
  walk start_leaf start_idx

let iter_all t f = iter_range t ~lo:Unbounded ~hi:Unbounded f

let entry_count t = t.entries

let depth t =
  let rec go acc = function
    | Leaf _ -> acc
    | Internal n -> go (acc + 1) n.children.(0)
  in
  go 1 t.root

let check_invariants t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check node lo hi depth_here : (int, string) result =
    let in_bounds k =
      (match lo with None -> true | Some b -> compare_key k b >= 0)
      && match hi with None -> true | Some b -> compare_key k b < 0
    in
    match node with
    | Leaf l ->
        if Array.length l.keys <> Array.length l.postings then
          fail "leaf keys/postings length mismatch"
        else begin
          let ok = ref (Ok depth_here) in
          Array.iteri
            (fun i k ->
              if !ok = Ok depth_here then begin
                if i > 0 && compare_key l.keys.(i - 1) k >= 0 then
                  ok := fail "leaf keys not strictly sorted";
                if not (in_bounds k) then ok := fail "leaf key out of bounds"
              end)
            l.keys;
          !ok
        end
    | Internal n ->
        if Array.length n.children <> Array.length n.seps + 1 then
          fail "internal arity mismatch"
        else begin
          let result = ref None in
          Array.iteri
            (fun i sep ->
              if !result = None then begin
                if i > 0 && compare_key n.seps.(i - 1) sep >= 0 then
                  result := Some (fail "separators not sorted");
                if not (in_bounds sep) then
                  result := Some (fail "separator out of bounds")
              end)
            n.seps;
          match !result with
          | Some e -> e
          | None ->
              let depths = ref [] in
              let err = ref None in
              Array.iteri
                (fun i child ->
                  if !err = None then begin
                    let clo = if i = 0 then lo else Some n.seps.(i - 1) in
                    let chi =
                      if i = Array.length n.seps then hi else Some n.seps.(i)
                    in
                    match check child clo chi (depth_here + 1) with
                    | Ok d -> depths := d :: !depths
                    | Error e -> err := Some e
                  end)
                n.children;
              (match !err with
              | Some e -> Error e
              | None -> (
                  match List.sort_uniq Int.compare !depths with
                  | [ d ] -> Ok d
                  | _ -> fail "unbalanced subtree depths"))
        end
  in
  match check t.root None None 1 with Ok _ -> Ok () | Error e -> Error e

(* Lazy prefix-range walk: the same leaf chase as the eager iterators,
   but demand-driven — a consumer that stops early (LIMIT, a probe join
   finding its match) never visits the remaining leaves, and nothing is
   materialized per scan. *)
let seq_prefix_range t ~prefix ~lo ~hi : (key * int) Seq.t =
  let np = Array.length prefix in
  let component k = if Array.length k > np then Some k.(np) else None in
  let below_lo k =
    match (lo, component k) with
    | None, _ -> false
    | Some _, None -> false
    | Some (v, incl), Some c ->
        let cmp = Ifdb_rel.Value.compare c v in
        if incl then cmp < 0 else cmp <= 0
  in
  let above_hi k =
    match (hi, component k) with
    | None, _ -> false
    | Some _, None -> false
    | Some (v, incl), Some c ->
        let cmp = Ifdb_rel.Value.compare c v in
        if incl then cmp > 0 else cmp >= 0
  in
  (* seek directly to the start of the range *)
  let seek_key =
    match lo with
    | Some (v, _) -> Array.append prefix [| v |]
    | None -> prefix
  in
  let l = find_leaf t.root seek_key in
  let i = lower_bound l.keys seek_key in
  let rec walk leaf idx () =
    if idx >= Array.length leaf.keys then
      match leaf.next with None -> Seq.Nil | Some nx -> walk nx 0 ()
    else begin
      let k = leaf.keys.(idx) in
      let c = compare_to_prefix k prefix in
      if c < 0 then walk leaf (idx + 1) ()
      else if c > 0 then Seq.Nil (* left the prefix region: sorted, so done *)
      else if above_hi k then Seq.Nil
      else if below_lo k then walk leaf (idx + 1) ()
      else
        let rec postings ps () =
          match ps with
          | [] -> walk leaf (idx + 1) ()
          | vid :: rest -> Seq.Cons ((k, vid), postings rest)
        in
        postings (List.rev leaf.postings.(idx)) ()
    end
  in
  walk l i

let seq_prefix t ~prefix = seq_prefix_range t ~prefix ~lo:None ~hi:None

let iter_prefix_range t ~prefix ~lo ~hi f =
  Seq.iter (fun (k, vid) -> f k vid) (seq_prefix_range t ~prefix ~lo ~hi)

let iter_prefix t ~prefix f =
  Seq.iter (fun (k, vid) -> f k vid) (seq_prefix t ~prefix)

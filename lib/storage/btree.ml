type key = Ifdb_rel.Value.t array

let compare_key (a : key) (b : key) =
  let na = Array.length a and nb = Array.length b in
  let n = min na nb in
  let rec go i =
    if i >= n then Int.compare na nb
    else
      let c = Ifdb_rel.Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Compare a full key against a prefix: only the prefix components
   participate, so equality means "key extends prefix". *)
let compare_to_prefix (k : key) (prefix : key) =
  let np = Array.length prefix in
  let rec go i =
    if i >= np then 0
    else
      let c = Ifdb_rel.Value.compare k.(i) prefix.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

type node =
  | Leaf of leaf
  | Internal of internal

and leaf = {
  mutable keys : key array;
  mutable postings : int list array; (* parallel to keys *)
  mutable next : leaf option;
}

and internal = {
  mutable seps : key array;      (* n-1 separators for n children *)
  mutable children : node array;
}

type t = {
  order : int;
  mutable root : node;
  mutable entries : int;
}

let create ?(order = 32) () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  {
    order;
    root = Leaf { keys = [||]; postings = [||]; next = None };
    entries = 0;
  }

(* Position of the first element of [keys] that is >= [k] (binary search). *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to descend into for key [k]: first separator > k gives
   its left child; separators equal to k route right (separator is the
   lowest key of the right subtree). *)
let child_index seps k =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  let out = Array.make (n + 1) x in
  Array.blit a 0 out 0 i;
  Array.blit a i out (i + 1) (n - i);
  out

let array_remove a i =
  let n = Array.length a in
  let out = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) out i (n - 1 - i);
  out

(* Returns Some (separator, right sibling) if the node split. *)
let rec insert_into t node k vid =
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys && compare_key l.keys.(i) k = 0 then begin
        if not (List.mem vid l.postings.(i)) then begin
          l.postings.(i) <- vid :: l.postings.(i);
          t.entries <- t.entries + 1
        end;
        None
      end
      else begin
        l.keys <- array_insert l.keys i k;
        l.postings <- array_insert l.postings i [ vid ];
        t.entries <- t.entries + 1;
        if Array.length l.keys <= t.order then None
        else begin
          let mid = Array.length l.keys / 2 in
          let right =
            {
              keys = Array.sub l.keys mid (Array.length l.keys - mid);
              postings = Array.sub l.postings mid (Array.length l.postings - mid);
              next = l.next;
            }
          in
          l.keys <- Array.sub l.keys 0 mid;
          l.postings <- Array.sub l.postings 0 mid;
          l.next <- Some right;
          Some (right.keys.(0), Leaf right)
        end
      end
  | Internal n -> (
      let ci = child_index n.seps k in
      match insert_into t n.children.(ci) k vid with
      | None -> None
      | Some (sep, right) ->
          n.seps <- array_insert n.seps ci sep;
          n.children <- array_insert n.children (ci + 1) right;
          if Array.length n.children <= t.order then None
          else begin
            let midc = Array.length n.children / 2 in
            (* children midc.. go right; separator midc-1 is promoted *)
            let promoted = n.seps.(midc - 1) in
            let right_node =
              {
                seps = Array.sub n.seps midc (Array.length n.seps - midc);
                children =
                  Array.sub n.children midc (Array.length n.children - midc);
              }
            in
            n.seps <- Array.sub n.seps 0 (midc - 1);
            n.children <- Array.sub n.children 0 midc;
            Some (promoted, Internal right_node)
          end)

let insert t k vid =
  match insert_into t t.root k vid with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] }

let rec find_leaf node k =
  match node with
  | Leaf l -> l
  | Internal n -> find_leaf n.children.(child_index n.seps k) k

let find t k =
  let l = find_leaf t.root k in
  let i = lower_bound l.keys k in
  if i < Array.length l.keys && compare_key l.keys.(i) k = 0 then l.postings.(i)
  else []

let remove t k vid =
  let l = find_leaf t.root k in
  let i = lower_bound l.keys k in
  if i < Array.length l.keys && compare_key l.keys.(i) k = 0 then begin
    let before = l.postings.(i) in
    let after = List.filter (fun v -> v <> vid) before in
    if List.length after < List.length before then begin
      t.entries <- t.entries - 1;
      if after = [] then begin
        l.keys <- array_remove l.keys i;
        l.postings <- array_remove l.postings i
      end
      else l.postings.(i) <- after
    end
  end

type bound = Unbounded | Incl of key | Excl of key

let leftmost_leaf node =
  let rec go = function
    | Leaf l -> l
    | Internal n -> go n.children.(0)
  in
  go node

let iter_range t ~lo ~hi f =
  let start_leaf, start_idx =
    match lo with
    | Unbounded -> (leftmost_leaf t.root, 0)
    | Incl k | Excl k ->
        let l = find_leaf t.root k in
        let i = lower_bound l.keys k in
        let i =
          match lo with
          | Excl _ when i < Array.length l.keys && compare_key l.keys.(i) k = 0 ->
              i + 1
          | _ -> i
        in
        (l, i)
  in
  let past_hi k =
    match hi with
    | Unbounded -> false
    | Incl h -> compare_key k h > 0
    | Excl h -> compare_key k h >= 0
  in
  let rec walk leaf idx =
    if idx >= Array.length leaf.keys then
      match leaf.next with None -> () | Some nx -> walk nx 0
    else begin
      let k = leaf.keys.(idx) in
      if not (past_hi k) then begin
        List.iter (fun vid -> f k vid) (List.rev leaf.postings.(idx));
        walk leaf (idx + 1)
      end
    end
  in
  walk start_leaf start_idx

let iter_all t f = iter_range t ~lo:Unbounded ~hi:Unbounded f

let entry_count t = t.entries

let depth t =
  let rec go acc = function
    | Leaf _ -> acc
    | Internal n -> go (acc + 1) n.children.(0)
  in
  go 1 t.root

let check_invariants t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check node lo hi depth_here : (int, string) result =
    let in_bounds k =
      (match lo with None -> true | Some b -> compare_key k b >= 0)
      && match hi with None -> true | Some b -> compare_key k b < 0
    in
    match node with
    | Leaf l ->
        if Array.length l.keys <> Array.length l.postings then
          fail "leaf keys/postings length mismatch"
        else begin
          let ok = ref (Ok depth_here) in
          Array.iteri
            (fun i k ->
              if !ok = Ok depth_here then begin
                if i > 0 && compare_key l.keys.(i - 1) k >= 0 then
                  ok := fail "leaf keys not strictly sorted";
                if not (in_bounds k) then ok := fail "leaf key out of bounds"
              end)
            l.keys;
          !ok
        end
    | Internal n ->
        if Array.length n.children <> Array.length n.seps + 1 then
          fail "internal arity mismatch"
        else begin
          let result = ref None in
          Array.iteri
            (fun i sep ->
              if !result = None then begin
                if i > 0 && compare_key n.seps.(i - 1) sep >= 0 then
                  result := Some (fail "separators not sorted");
                if not (in_bounds sep) then
                  result := Some (fail "separator out of bounds")
              end)
            n.seps;
          match !result with
          | Some e -> e
          | None ->
              let depths = ref [] in
              let err = ref None in
              Array.iteri
                (fun i child ->
                  if !err = None then begin
                    let clo = if i = 0 then lo else Some n.seps.(i - 1) in
                    let chi =
                      if i = Array.length n.seps then hi else Some n.seps.(i)
                    in
                    match check child clo chi (depth_here + 1) with
                    | Ok d -> depths := d :: !depths
                    | Error e -> err := Some e
                  end)
                n.children;
              (match !err with
              | Some e -> Error e
              | None -> (
                  match List.sort_uniq Int.compare !depths with
                  | [ d ] -> Ok d
                  | _ -> fail "unbalanced subtree depths"))
        end
  in
  match check t.root None None 1 with Ok _ -> Ok () | Error e -> Error e

(* Lazy prefix-range walk: the same leaf chase as the eager iterators,
   but demand-driven — a consumer that stops early (LIMIT, a probe join
   finding its match) never visits the remaining leaves, and nothing is
   materialized per scan. *)
let seq_prefix_range t ~prefix ~lo ~hi : (key * int) Seq.t =
  let np = Array.length prefix in
  let component k = if Array.length k > np then Some k.(np) else None in
  let below_lo k =
    match (lo, component k) with
    | None, _ -> false
    | Some _, None -> false
    | Some (v, incl), Some c ->
        let cmp = Ifdb_rel.Value.compare c v in
        if incl then cmp < 0 else cmp <= 0
  in
  let above_hi k =
    match (hi, component k) with
    | None, _ -> false
    | Some _, None -> false
    | Some (v, incl), Some c ->
        let cmp = Ifdb_rel.Value.compare c v in
        if incl then cmp > 0 else cmp >= 0
  in
  (* seek directly to the start of the range *)
  let seek_key =
    match lo with
    | Some (v, _) -> Array.append prefix [| v |]
    | None -> prefix
  in
  let l = find_leaf t.root seek_key in
  let i = lower_bound l.keys seek_key in
  let rec walk leaf idx () =
    if idx >= Array.length leaf.keys then
      match leaf.next with None -> Seq.Nil | Some nx -> walk nx 0 ()
    else begin
      let k = leaf.keys.(idx) in
      let c = compare_to_prefix k prefix in
      if c < 0 then walk leaf (idx + 1) ()
      else if c > 0 then Seq.Nil (* left the prefix region: sorted, so done *)
      else if above_hi k then Seq.Nil
      else if below_lo k then walk leaf (idx + 1) ()
      else
        let rec postings ps () =
          match ps with
          | [] -> walk leaf (idx + 1) ()
          | vid :: rest -> Seq.Cons ((k, vid), postings rest)
        in
        postings (List.rev leaf.postings.(idx)) ()
    end
  in
  walk l i

let seq_prefix t ~prefix = seq_prefix_range t ~prefix ~lo:None ~hi:None

let iter_prefix_range t ~prefix ~lo ~hi f =
  Seq.iter (fun (k, vid) -> f k vid) (seq_prefix_range t ~prefix ~lo ~hi)

let iter_prefix t ~prefix f =
  Seq.iter (fun (k, vid) -> f k vid) (seq_prefix t ~prefix)

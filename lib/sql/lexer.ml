exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && input.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do incr i done;
      emit (Token.Ident (String.sub input start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1] then begin
        is_float := true;
        incr i;
        while !i < n && is_digit input.[!i] do incr i done
      end;
      if !i < n && (input.[!i] = 'e' || input.[!i] = 'E')
         && (!i + 1 < n
             && (is_digit input.[!i + 1]
                 || ((input.[!i + 1] = '+' || input.[!i + 1] = '-')
                     && !i + 2 < n && is_digit input.[!i + 2])))
      then begin
        is_float := true;
        incr i;
        if input.[!i] = '+' || input.[!i] = '-' then incr i;
        while !i < n && is_digit input.[!i] do incr i done
      end;
      let text = String.sub input start (!i - start) in
      if !is_float then emit (Token.Float_lit (float_of_string text))
      else emit (Token.Int_lit (int_of_string text))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error ("unterminated string literal", !i));
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      emit (Token.String_lit (Buffer.contents buf))
    end
    else if c = '$' then begin
      incr i;
      let start = !i in
      while !i < n && is_digit input.[!i] do incr i done;
      if !i = start then
        raise (Lex_error ("expected digits after $ placeholder", !i));
      emit (Token.Param (int_of_string (String.sub input start (!i - start))))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<>" | "!=" -> emit Token.Neq; i := !i + 2
      | "<=" -> emit Token.Le; i := !i + 2
      | ">=" -> emit Token.Ge; i := !i + 2
      | "||" -> emit Token.Concat; i := !i + 2
      | _ ->
          (match c with
          | '(' -> emit Token.Lparen
          | ')' -> emit Token.Rparen
          | '{' -> emit Token.Lbrace
          | '}' -> emit Token.Rbrace
          | ',' -> emit Token.Comma
          | '.' -> emit Token.Dot
          | ';' -> emit Token.Semicolon
          | '*' -> emit Token.Star
          | '+' -> emit Token.Plus
          | '-' -> emit Token.Minus
          | '/' -> emit Token.Slash
          | '%' -> emit Token.Percent
          | '=' -> emit Token.Eq
          | '<' -> emit Token.Lt
          | '>' -> emit Token.Gt
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
          incr i
    end
  done;
  emit Token.Eof;
  List.rev !tokens

(** Hand-written SQL lexer.

    Supports: identifiers (letters, digits, [_], starting with a letter
    or [_]), integer and float literals, single-quoted strings with
    [''] escaping, [--] line comments, and the operator/punctuation set
    of the dialect, including [{…}] label-literal braces and [||]. *)

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> Token.t list
(** Whole-input tokenization; the list always ends with [Eof]. *)

open Ast

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR" | Concat -> "||"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let const_to_string (v : Ifdb_rel.Value.t) =
  match v with
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
      let s = Printf.sprintf "%.17g" f in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ ".0"
  | Text s -> Printf.sprintf "'%s'" (escape_string s)
  | Bool b -> if b then "TRUE" else "FALSE"
  | Ints a ->
      (* no SQL literal for arrays other than labels *)
      "{" ^ String.concat ", " (List.map string_of_int (Array.to_list a)) ^ "}"

let rec expr_to_string = function
  | E_const v -> const_to_string v
  | E_col (None, c) -> c
  | E_col (Some t, c) -> t ^ "." ^ c
  | E_binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op)
        (expr_to_string b)
  | E_not e -> Printf.sprintf "(NOT %s)" (expr_to_string e)
  | E_neg e -> Printf.sprintf "(-%s)" (expr_to_string e)
  | E_is_null e -> Printf.sprintf "(%s IS NULL)" (expr_to_string e)
  | E_is_not_null e -> Printf.sprintf "(%s IS NOT NULL)" (expr_to_string e)
  | E_in (e, vs) ->
      Printf.sprintf "(%s IN (%s))" (expr_to_string e)
        (String.concat ", " (List.map expr_to_string vs))
  | E_like (e, p) ->
      Printf.sprintf "(%s LIKE '%s')" (expr_to_string e) (escape_string p)
  | E_fn (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | E_count_star -> "COUNT(*)"
  | E_count_distinct e -> Printf.sprintf "COUNT(DISTINCT %s)" (expr_to_string e)
  | E_case (branches, default) ->
      let b =
        List.map
          (fun (c, v) ->
            Printf.sprintf "WHEN %s THEN %s" (expr_to_string c) (expr_to_string v))
          branches
      in
      let d =
        match default with
        | Some e -> Printf.sprintf " ELSE %s" (expr_to_string e)
        | None -> ""
      in
      Printf.sprintf "CASE %s%s END" (String.concat " " b) d
  | E_label_lit tags -> "{" ^ String.concat ", " tags ^ "}"
  | E_scalar_subquery sel -> "(" ^ select_to_string sel ^ ")"
  | E_exists sel -> "EXISTS (" ^ select_to_string sel ^ ")"
  | E_param n -> "$" ^ string_of_int n

and item_to_string = function
  | Sel_star -> "*"
  | Sel_table_star t -> t ^ ".*"
  | Sel_expr (e, None) -> expr_to_string e
  | Sel_expr (e, Some a) -> Printf.sprintf "%s AS %s" (expr_to_string e) a

and table_ref_to_string = function
  | T_table (t, None) -> t
  | T_table (t, Some a) -> Printf.sprintf "%s AS %s" t a
  | T_join (a, kind, b, on) ->
      let kw = match kind with Inner -> "JOIN" | Left -> "LEFT JOIN" in
      let on_s =
        match on with
        | Some e -> Printf.sprintf " ON %s" (expr_to_string e)
        | None -> " ON TRUE"
      in
      Printf.sprintf "%s %s %s%s" (table_ref_to_string a) kw
        (table_ref_to_string b) on_s
  | T_subquery (q, alias) ->
      Printf.sprintf "(%s) AS %s" (select_to_string q) alias

and select_to_string (s : select) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map item_to_string s.items));
  (match s.from with
  | Some t -> Buffer.add_string buf (" FROM " ^ table_ref_to_string t)
  | None -> ());
  (match s.where with
  | Some e -> Buffer.add_string buf (" WHERE " ^ expr_to_string e)
  | None -> ());
  (match s.group_by with
  | [] -> ()
  | es ->
      Buffer.add_string buf
        (" GROUP BY " ^ String.concat ", " (List.map expr_to_string es)));
  (match s.having with
  | Some e -> Buffer.add_string buf (" HAVING " ^ expr_to_string e)
  | None -> ());
  (match s.order_by with
  | [] -> ()
  | es ->
      let one (e, dir) =
        expr_to_string e ^ (match dir with Asc -> " ASC" | Desc -> " DESC")
      in
      Buffer.add_string buf (" ORDER BY " ^ String.concat ", " (List.map one es)));
  (match s.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  (match s.offset with
  | Some n -> Buffer.add_string buf (Printf.sprintf " OFFSET %d" n)
  | None -> ());
  List.iter
    (fun (kind, member) ->
      Buffer.add_string buf
        (match kind with `Union -> " UNION " | `Union_all -> " UNION ALL ");
      Buffer.add_string buf (select_to_string member))
    s.unions;
  Buffer.contents buf

let datatype_to_string = Ifdb_rel.Datatype.name

let column_def_to_string (c : column_def) =
  Printf.sprintf "%s %s%s%s%s" c.cd_name
    (datatype_to_string c.cd_type)
    (if c.cd_not_null then " NOT NULL" else "")
    (if c.cd_primary_key then " PRIMARY KEY" else "")
    (if c.cd_unique then " UNIQUE" else "")

let constraint_to_string = function
  | C_primary_key cols -> Printf.sprintf "PRIMARY KEY (%s)" (String.concat ", " cols)
  | C_unique cols -> Printf.sprintf "UNIQUE (%s)" (String.concat ", " cols)
  | C_foreign_key { c_cols; c_ref_table; c_ref_cols } ->
      Printf.sprintf "FOREIGN KEY (%s) REFERENCES %s (%s)"
        (String.concat ", " c_cols) c_ref_table (String.concat ", " c_ref_cols)

let rec stmt_to_string = function
  | S_select s -> select_to_string s
  | S_insert { i_table; i_columns; i_rows; i_select; i_declassifying } ->
      let cols =
        match i_columns with
        | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
        | None -> ""
      in
      let decl =
        match i_declassifying with
        | [] -> ""
        | tags -> Printf.sprintf " DECLASSIFYING (%s)" (String.concat ", " tags)
      in
      let source =
        match i_select with
        | Some sel -> select_to_string sel
        | None ->
            let row vs =
              "(" ^ String.concat ", " (List.map expr_to_string vs) ^ ")"
            in
            "VALUES " ^ String.concat ", " (List.map row i_rows)
      in
      Printf.sprintf "INSERT INTO %s%s %s%s" i_table cols source decl
  | S_update { u_table; u_sets; u_where } ->
      let sets =
        List.map (fun (c, e) -> Printf.sprintf "%s = %s" c (expr_to_string e)) u_sets
      in
      let where =
        match u_where with
        | Some e -> " WHERE " ^ expr_to_string e
        | None -> ""
      in
      Printf.sprintf "UPDATE %s SET %s%s" u_table (String.concat ", " sets) where
  | S_delete { d_table; d_where } ->
      let where =
        match d_where with
        | Some e -> " WHERE " ^ expr_to_string e
        | None -> ""
      in
      Printf.sprintf "DELETE FROM %s%s" d_table where
  | S_create_table { ct_name; ct_columns; ct_constraints } ->
      let items =
        List.map column_def_to_string ct_columns
        @ List.map constraint_to_string ct_constraints
      in
      Printf.sprintf "CREATE TABLE %s (%s)" ct_name (String.concat ", " items)
  | S_create_view { cv_name; cv_query; cv_declassifying; cv_materialized } ->
      let decl =
        match cv_declassifying with
        | [] -> ""
        | tags -> Printf.sprintf " WITH DECLASSIFYING (%s)" (String.concat ", " tags)
      in
      Printf.sprintf "CREATE %sVIEW %s AS %s%s"
        (if cv_materialized then "MATERIALIZED " else "")
        cv_name (select_to_string cv_query) decl
  | S_create_index { ci_name; ci_table; ci_cols } ->
      Printf.sprintf "CREATE INDEX %s ON %s (%s)" ci_name ci_table
        (String.concat ", " ci_cols)
  | S_drop (`Table, n) -> "DROP TABLE " ^ n
  | S_drop (`View, n) -> "DROP VIEW " ^ n
  | S_drop (`Index, n) -> "DROP INDEX " ^ n
  | S_begin -> "BEGIN"
  | S_commit -> "COMMIT"
  | S_rollback -> "ROLLBACK"
  | S_perform (name, args) ->
      Printf.sprintf "PERFORM %s(%s)" name
        (String.concat ", " (List.map expr_to_string args))
  | S_explain { x_analyze; x_stmt } ->
      Printf.sprintf "EXPLAIN %s%s"
        (if x_analyze then "ANALYZE " else "")
        (stmt_to_string x_stmt)
  | S_prepare { pr_name; pr_stmt } ->
      Printf.sprintf "PREPARE %s AS %s" pr_name (stmt_to_string pr_stmt)
  | S_execute { ex_name; ex_args = [] } -> "EXECUTE " ^ ex_name
  | S_execute { ex_name; ex_args } ->
      Printf.sprintf "EXECUTE %s (%s)" ex_name
        (String.concat ", " (List.map expr_to_string ex_args))
  | S_deallocate None -> "DEALLOCATE ALL"
  | S_deallocate (Some n) -> "DEALLOCATE " ^ n

let pp_stmt ppf s = Format.pp_print_string ppf (stmt_to_string s)

(** Pretty-printer from AST back to dialect SQL.

    The output reparses to the same AST (up to associativity already
    fixed by parenthesization), which the test suite checks with a
    round-trip property. *)

val expr_to_string : Ast.expr -> string
val select_to_string : Ast.select -> string
val stmt_to_string : Ast.stmt -> string

val pp_stmt : Format.formatter -> Ast.stmt -> unit

(* Abstract syntax for the SQL dialect, including the IFDB extensions:
   - the [_label] system column (an ordinary column reference here);
   - label literals [{tag_name, …}];
   - [INSERT … DECLASSIFYING (tags)] for the Foreign Key Rule
     (paper section 5.2.2);
   - [CREATE VIEW … WITH DECLASSIFYING (tags)] for declassifying views
     (section 4.3). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type expr =
  | E_const of Ifdb_rel.Value.t
  | E_col of string option * string        (* optional qualifier, name *)
  | E_binop of binop * expr * expr
  | E_not of expr
  | E_neg of expr
  | E_is_null of expr
  | E_is_not_null of expr
  | E_in of expr * expr list
  | E_like of expr * string
  | E_fn of string * expr list              (* scalar or aggregate call *)
  | E_count_star
  | E_count_distinct of expr                (* COUNT(DISTINCT e) *)
  | E_case of (expr * expr) list * expr option
  | E_label_lit of string list              (* {tag_name, …} *)
  | E_scalar_subquery of select             (* uncorrelated (SELECT …) *)
  | E_exists of select                      (* EXISTS (SELECT …) *)

and order_dir = Asc | Desc

and select_item =
  | Sel_star
  | Sel_table_star of string                (* t.* *)
  | Sel_expr of expr * string option        (* expr AS alias *)

and join_kind = Inner | Left

and table_ref =
  | T_table of string * string option       (* name AS alias *)
  | T_join of table_ref * join_kind * table_ref * expr option
  | T_subquery of select * string           (* (SELECT …) AS alias *)

and select = {
  distinct : bool;
  items : select_item list;
  from : table_ref option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
  unions : ([ `Union | `Union_all ] * select) list;
      (* further members of a UNION chain; the last member's
         ORDER BY/LIMIT apply to the whole union *)
}

type column_def = {
  cd_name : string;
  cd_type : Ifdb_rel.Datatype.t;
  cd_not_null : bool;
  cd_primary_key : bool;
  cd_unique : bool;
}

type table_constraint =
  | C_primary_key of string list
  | C_unique of string list
  | C_foreign_key of {
      c_cols : string list;
      c_ref_table : string;
      c_ref_cols : string list;
    }

type stmt =
  | S_select of select
  | S_insert of {
      i_table : string;
      i_columns : string list option;
      i_rows : expr list list;          (* VALUES rows, or [] with i_select *)
      i_select : select option;         (* INSERT ... SELECT *)
      i_declassifying : string list;  (* tag names, Foreign Key Rule *)
    }
  | S_update of {
      u_table : string;
      u_sets : (string * expr) list;
      u_where : expr option;
    }
  | S_delete of { d_table : string; d_where : expr option }
  | S_create_table of {
      ct_name : string;
      ct_columns : column_def list;
      ct_constraints : table_constraint list;
    }
  | S_create_view of {
      cv_name : string;
      cv_query : select;
      cv_declassifying : string list;  (* tag names bound to the view *)
      cv_materialized : bool;
          (* CREATE MATERIALIZED VIEW: ask the engine to keep an
             incrementally-maintained result instead of re-running the
             query per read *)
    }
  | S_create_index of { ci_name : string; ci_table : string; ci_cols : string list }
  | S_drop of [ `Table | `View | `Index ] * string
  | S_begin
  | S_commit
  | S_rollback
  | S_perform of string * expr list  (* PERFORM/CALL procedure *)
  | S_explain of { x_analyze : bool; x_stmt : stmt }
      (* EXPLAIN [ANALYZE] stmt: plan (and, with ANALYZE, execution
         trace) instead of the statement's own result *)

let select_defaults =
  {
    distinct = false;
    items = [];
    from = None;
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    offset = None;
    unions = [];
  }

(* Aggregate function names the planner recognizes. *)
let aggregate_names = [ "count"; "sum"; "avg"; "min"; "max" ]

let is_aggregate_name name =
  List.mem (String.lowercase_ascii name) aggregate_names

(* Does the expression contain an aggregate call? *)
let rec has_aggregate = function
  | E_const _ | E_col _ | E_label_lit _ -> false
  | E_count_star | E_count_distinct _ -> true
  | E_fn (name, args) -> is_aggregate_name name || List.exists has_aggregate args
  | E_binop (_, a, b) -> has_aggregate a || has_aggregate b
  | E_not a | E_neg a | E_is_null a | E_is_not_null a | E_like (a, _) ->
      has_aggregate a
  | E_in (a, vs) -> has_aggregate a || List.exists has_aggregate vs
  | E_case (branches, default) ->
      List.exists (fun (c, v) -> has_aggregate c || has_aggregate v) branches
      || (match default with Some d -> has_aggregate d | None -> false)
  | E_scalar_subquery _ | E_exists _ -> false (* their own scope *)

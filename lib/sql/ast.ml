(* Abstract syntax for the SQL dialect, including the IFDB extensions:
   - the [_label] system column (an ordinary column reference here);
   - label literals [{tag_name, …}];
   - [INSERT … DECLASSIFYING (tags)] for the Foreign Key Rule
     (paper section 5.2.2);
   - [CREATE VIEW … WITH DECLASSIFYING (tags)] for declassifying views
     (section 4.3). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type expr =
  | E_const of Ifdb_rel.Value.t
  | E_col of string option * string        (* optional qualifier, name *)
  | E_binop of binop * expr * expr
  | E_not of expr
  | E_neg of expr
  | E_is_null of expr
  | E_is_not_null of expr
  | E_in of expr * expr list
  | E_like of expr * string
  | E_fn of string * expr list              (* scalar or aggregate call *)
  | E_count_star
  | E_count_distinct of expr                (* COUNT(DISTINCT e) *)
  | E_case of (expr * expr) list * expr option
  | E_label_lit of string list              (* {tag_name, …} *)
  | E_scalar_subquery of select             (* uncorrelated (SELECT …) *)
  | E_exists of select                      (* EXISTS (SELECT …) *)
  | E_param of int                          (* $n placeholder, 1-based *)

and order_dir = Asc | Desc

and select_item =
  | Sel_star
  | Sel_table_star of string                (* t.* *)
  | Sel_expr of expr * string option        (* expr AS alias *)

and join_kind = Inner | Left

and table_ref =
  | T_table of string * string option       (* name AS alias *)
  | T_join of table_ref * join_kind * table_ref * expr option
  | T_subquery of select * string           (* (SELECT …) AS alias *)

and select = {
  distinct : bool;
  items : select_item list;
  from : table_ref option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
  unions : ([ `Union | `Union_all ] * select) list;
      (* further members of a UNION chain; the last member's
         ORDER BY/LIMIT apply to the whole union *)
}

type column_def = {
  cd_name : string;
  cd_type : Ifdb_rel.Datatype.t;
  cd_not_null : bool;
  cd_primary_key : bool;
  cd_unique : bool;
}

type table_constraint =
  | C_primary_key of string list
  | C_unique of string list
  | C_foreign_key of {
      c_cols : string list;
      c_ref_table : string;
      c_ref_cols : string list;
    }

type stmt =
  | S_select of select
  | S_insert of {
      i_table : string;
      i_columns : string list option;
      i_rows : expr list list;          (* VALUES rows, or [] with i_select *)
      i_select : select option;         (* INSERT ... SELECT *)
      i_declassifying : string list;  (* tag names, Foreign Key Rule *)
    }
  | S_update of {
      u_table : string;
      u_sets : (string * expr) list;
      u_where : expr option;
    }
  | S_delete of { d_table : string; d_where : expr option }
  | S_create_table of {
      ct_name : string;
      ct_columns : column_def list;
      ct_constraints : table_constraint list;
    }
  | S_create_view of {
      cv_name : string;
      cv_query : select;
      cv_declassifying : string list;  (* tag names bound to the view *)
      cv_materialized : bool;
          (* CREATE MATERIALIZED VIEW: ask the engine to keep an
             incrementally-maintained result instead of re-running the
             query per read *)
    }
  | S_create_index of { ci_name : string; ci_table : string; ci_cols : string list }
  | S_drop of [ `Table | `View | `Index ] * string
  | S_begin
  | S_commit
  | S_rollback
  | S_perform of string * expr list  (* PERFORM/CALL procedure *)
  | S_explain of { x_analyze : bool; x_stmt : stmt }
      (* EXPLAIN [ANALYZE] stmt: plan (and, with ANALYZE, execution
         trace) instead of the statement's own result *)
  | S_prepare of { pr_name : string; pr_stmt : stmt }
      (* PREPARE name AS stmt, with $n placeholders in the body *)
  | S_execute of { ex_name : string; ex_args : expr list }
      (* EXECUTE name (args…) *)
  | S_deallocate of string option
      (* DEALLOCATE name | ALL *)

let select_defaults =
  {
    distinct = false;
    items = [];
    from = None;
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    offset = None;
    unions = [];
  }

(* Aggregate function names the planner recognizes. *)
let aggregate_names = [ "count"; "sum"; "avg"; "min"; "max" ]

let is_aggregate_name name =
  List.mem (String.lowercase_ascii name) aggregate_names

(* Does the expression contain an aggregate call? *)
let rec has_aggregate = function
  | E_const _ | E_col _ | E_label_lit _ | E_param _ -> false
  | E_count_star | E_count_distinct _ -> true
  | E_fn (name, args) -> is_aggregate_name name || List.exists has_aggregate args
  | E_binop (_, a, b) -> has_aggregate a || has_aggregate b
  | E_not a | E_neg a | E_is_null a | E_is_not_null a | E_like (a, _) ->
      has_aggregate a
  | E_in (a, vs) -> has_aggregate a || List.exists has_aggregate vs
  | E_case (branches, default) ->
      List.exists (fun (c, v) -> has_aggregate c || has_aggregate v) branches
      || (match default with Some d -> has_aggregate d | None -> false)
  | E_scalar_subquery _ | E_exists _ -> false (* their own scope *)

(* Visit every expression in a statement, subquery bodies included —
   powers parameter counting and plan-cache eligibility checks. *)
let rec iter_exprs_expr f e =
  f e;
  match e with
  | E_const _ | E_col _ | E_label_lit _ | E_count_star | E_param _ -> ()
  | E_binop (_, a, b) ->
      iter_exprs_expr f a;
      iter_exprs_expr f b
  | E_not a | E_neg a | E_is_null a | E_is_not_null a | E_like (a, _)
  | E_count_distinct a ->
      iter_exprs_expr f a
  | E_in (a, vs) ->
      iter_exprs_expr f a;
      List.iter (iter_exprs_expr f) vs
  | E_fn (_, args) -> List.iter (iter_exprs_expr f) args
  | E_case (branches, default) ->
      List.iter
        (fun (c, v) ->
          iter_exprs_expr f c;
          iter_exprs_expr f v)
        branches;
      Option.iter (iter_exprs_expr f) default
  | E_scalar_subquery sel | E_exists sel -> iter_exprs_select f sel

and iter_exprs_select f sel =
  List.iter
    (function
      | Sel_expr (e, _) -> iter_exprs_expr f e
      | Sel_star | Sel_table_star _ -> ())
    sel.items;
  Option.iter (iter_exprs_from f) sel.from;
  Option.iter (iter_exprs_expr f) sel.where;
  List.iter (iter_exprs_expr f) sel.group_by;
  Option.iter (iter_exprs_expr f) sel.having;
  List.iter (fun (e, _) -> iter_exprs_expr f e) sel.order_by;
  List.iter (fun (_, s) -> iter_exprs_select f s) sel.unions

and iter_exprs_from f = function
  | T_table _ -> ()
  | T_join (l, _, r, cond) ->
      iter_exprs_from f l;
      iter_exprs_from f r;
      Option.iter (iter_exprs_expr f) cond
  | T_subquery (sel, _) -> iter_exprs_select f sel

let rec iter_exprs f (st : stmt) =
  match st with
  | S_select sel -> iter_exprs_select f sel
  | S_insert { i_rows; i_select; _ } ->
      List.iter (List.iter (iter_exprs_expr f)) i_rows;
      Option.iter (iter_exprs_select f) i_select
  | S_update { u_sets; u_where; _ } ->
      List.iter (fun (_, e) -> iter_exprs_expr f e) u_sets;
      Option.iter (iter_exprs_expr f) u_where
  | S_delete { d_where; _ } -> Option.iter (iter_exprs_expr f) d_where
  | S_perform (_, args) -> List.iter (iter_exprs_expr f) args
  | S_explain { x_stmt; _ } -> iter_exprs f x_stmt
  | S_prepare { pr_stmt; _ } -> iter_exprs f pr_stmt
  | S_execute { ex_args; _ } -> List.iter (iter_exprs_expr f) ex_args
  | S_create_view { cv_query; _ } -> iter_exprs_select f cv_query
  | S_create_table _ | S_create_index _ | S_drop _ | S_begin | S_commit
  | S_rollback | S_deallocate _ ->
      ()

(* Highest $n referenced anywhere in the statement; 0 = no parameters. *)
let max_param st =
  let m = ref 0 in
  iter_exprs (function E_param n -> if n > !m then m := n | _ -> ()) st;
  !m

let has_param st =
  let found = ref false in
  iter_exprs (function E_param _ -> found := true | _ -> ()) st;
  !found

(* Expression-position subqueries lower to memoizing lazy thunks, so
   plans containing them must be rebuilt per execution (FROM-clause
   subqueries inline into the plan tree and are fine). *)
let has_expr_subquery st =
  let found = ref false in
  iter_exprs
    (function E_scalar_subquery _ | E_exists _ -> found := true | _ -> ())
    st;
  !found

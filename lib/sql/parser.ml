exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type state = { toks : Token.t array; mutable pos : int }

let peek st = st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else Token.Eof
let peek3 st =
  if st.pos + 2 < Array.length st.toks then st.toks.(st.pos + 2) else Token.Eof
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st))

(* Case-insensitive keyword matching over Ident tokens. *)
let is_kw st kw =
  match peek st with
  | Token.Ident s -> String.lowercase_ascii s = kw
  | _ -> false

let is_kw2 st kw =
  match peek2 st with
  | Token.Ident s -> String.lowercase_ascii s = kw
  | _ -> false

let eat_kw st kw = if is_kw st kw then (advance st; true) else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    fail "expected %s but found %s" (String.uppercase_ascii kw)
      (Token.to_string (peek st))

let ident st =
  match peek st with
  | Token.Ident s -> advance st; s
  | t -> fail "expected identifier but found %s" (Token.to_string t)

let int_lit st =
  match peek st with
  | Token.Int_lit i -> advance st; i
  | t -> fail "expected integer but found %s" (Token.to_string t)

let comma_separated st f =
  let rec go acc =
    let x = f st in
    if peek st = Token.Comma then begin advance st; go (x :: acc) end
    else List.rev (x :: acc)
  in
  go []

let paren_ident_list st =
  expect st Token.Lparen;
  let ids = comma_separated st ident in
  expect st Token.Rparen;
  ids

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_or st =
  let lhs = parse_and st in
  if eat_kw st "or" then Ast.E_binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if eat_kw st "and" then Ast.E_binop (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if is_kw st "not" then begin
    advance st;
    Ast.E_not (parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Token.Eq -> advance st; Ast.E_binop (Ast.Eq, lhs, parse_add st)
  | Token.Neq -> advance st; Ast.E_binop (Ast.Neq, lhs, parse_add st)
  | Token.Lt -> advance st; Ast.E_binop (Ast.Lt, lhs, parse_add st)
  | Token.Le -> advance st; Ast.E_binop (Ast.Le, lhs, parse_add st)
  | Token.Gt -> advance st; Ast.E_binop (Ast.Gt, lhs, parse_add st)
  | Token.Ge -> advance st; Ast.E_binop (Ast.Ge, lhs, parse_add st)
  | Token.Ident _ when is_kw st "is" ->
      advance st;
      if eat_kw st "not" then begin
        expect_kw st "null";
        Ast.E_is_not_null lhs
      end
      else begin
        expect_kw st "null";
        Ast.E_is_null lhs
      end
  | Token.Ident _ when is_kw st "in" ->
      advance st;
      expect st Token.Lparen;
      let vs = comma_separated st parse_or in
      expect st Token.Rparen;
      Ast.E_in (lhs, vs)
  | Token.Ident _ when is_kw st "like" ->
      advance st;
      (match peek st with
      | Token.String_lit p -> advance st; Ast.E_like (lhs, p)
      | t -> fail "LIKE expects a string literal, found %s" (Token.to_string t))
  | Token.Ident _ when is_kw st "between" ->
      advance st;
      let lo = parse_add st in
      expect_kw st "and";
      let hi = parse_add st in
      Ast.E_binop
        (Ast.And, Ast.E_binop (Ast.Ge, lhs, lo), Ast.E_binop (Ast.Le, lhs, hi))
  | Token.Ident _
    when is_kw st "not" && (is_kw2 st "in" || is_kw2 st "like" || is_kw2 st "between")
    ->
      advance st;
      if is_kw st "between" then begin
        advance st;
        let lo = parse_add st in
        expect_kw st "and";
        let hi = parse_add st in
        Ast.E_not
          (Ast.E_binop
             (Ast.And, Ast.E_binop (Ast.Ge, lhs, lo), Ast.E_binop (Ast.Le, lhs, hi)))
      end
      else if eat_kw st "in" then begin
        expect st Token.Lparen;
        let vs = comma_separated st parse_or in
        expect st Token.Rparen;
        Ast.E_not (Ast.E_in (lhs, vs))
      end
      else begin
        expect_kw st "like";
        match peek st with
        | Token.String_lit p -> advance st; Ast.E_not (Ast.E_like (lhs, p))
        | t -> fail "LIKE expects a string literal, found %s" (Token.to_string t)
      end
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Token.Plus -> advance st; go (Ast.E_binop (Ast.Add, lhs, parse_mul st))
    | Token.Minus -> advance st; go (Ast.E_binop (Ast.Sub, lhs, parse_mul st))
    | Token.Concat -> advance st; go (Ast.E_binop (Ast.Concat, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.Star -> advance st; go (Ast.E_binop (Ast.Mul, lhs, parse_unary st))
    | Token.Slash -> advance st; go (Ast.E_binop (Ast.Div, lhs, parse_unary st))
    | Token.Percent -> advance st; go (Ast.E_binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.Minus ->
      advance st;
      (* fold a negated numeric literal into the constant, so printing
         and reparsing are stable *)
      (match parse_unary st with
      | Ast.E_const (Ifdb_rel.Value.Int i) -> Ast.E_const (Ifdb_rel.Value.Int (-i))
      | Ast.E_const (Ifdb_rel.Value.Float f) ->
          Ast.E_const (Ifdb_rel.Value.Float (-.f))
      | e -> Ast.E_neg e)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.Param n ->
      advance st;
      if n < 1 then fail "parameter placeholders are numbered from $1";
      Ast.E_param n
  | Token.Int_lit i -> advance st; Ast.E_const (Ifdb_rel.Value.Int i)
  | Token.Float_lit f -> advance st; Ast.E_const (Ifdb_rel.Value.Float f)
  | Token.String_lit s -> advance st; Ast.E_const (Ifdb_rel.Value.Text s)
  | Token.Lparen ->
      advance st;
      if is_kw st "select" then begin
        let sel = parse_select st in
        expect st Token.Rparen;
        Ast.E_scalar_subquery sel
      end
      else begin
        let e = parse_or st in
        expect st Token.Rparen;
        e
      end
  | Token.Lbrace ->
      (* label literal: {tag, tag, …} or {} *)
      advance st;
      if peek st = Token.Rbrace then begin
        advance st;
        Ast.E_label_lit []
      end
      else begin
        let tags = comma_separated st ident in
        expect st Token.Rbrace;
        Ast.E_label_lit tags
      end
  | Token.Ident s -> (
      let lower = String.lowercase_ascii s in
      match lower with
      | "null" -> advance st; Ast.E_const Ifdb_rel.Value.Null
      | "true" -> advance st; Ast.E_const (Ifdb_rel.Value.Bool true)
      | "false" -> advance st; Ast.E_const (Ifdb_rel.Value.Bool false)
      | "exists" ->
          advance st;
          expect st Token.Lparen;
          let sel = parse_select st in
          expect st Token.Rparen;
          Ast.E_exists sel
      | "case" ->
          advance st;
          let branches = ref [] in
          while is_kw st "when" do
            advance st;
            let cond = parse_or st in
            expect_kw st "then";
            let v = parse_or st in
            branches := (cond, v) :: !branches
          done;
          let default = if eat_kw st "else" then Some (parse_or st) else None in
          expect_kw st "end";
          Ast.E_case (List.rev !branches, default)
      | _ ->
          advance st;
          if peek st = Token.Lparen then begin
            advance st;
            if lower = "count" && peek st = Token.Star then begin
              advance st;
              expect st Token.Rparen;
              Ast.E_count_star
            end
            else if lower = "count" && is_kw st "distinct" then begin
              advance st;
              let e = parse_or st in
              expect st Token.Rparen;
              Ast.E_count_distinct e
            end
            else if peek st = Token.Rparen then begin
              advance st;
              Ast.E_fn (s, [])
            end
            else begin
              let args = comma_separated st parse_or in
              expect st Token.Rparen;
              Ast.E_fn (s, args)
            end
          end
          else if peek st = Token.Dot then
            match peek2 st with
            | Token.Ident col -> advance st; advance st; Ast.E_col (Some s, col)
            | _ -> Ast.E_col (None, s) (* leave the dot for the caller: table-dot-star *)
          else Ast.E_col (None, s))
  | t -> fail "unexpected token %s in expression" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

and parse_select st : Ast.select =
  expect_kw st "select";
  let distinct = eat_kw st "distinct" in
  let items = comma_separated st parse_select_item in
  let from =
    if eat_kw st "from" then Some (parse_table_expr st) else None
  in
  let where = if eat_kw st "where" then Some (parse_or st) else None in
  let group_by =
    if is_kw st "group" then begin
      advance st;
      expect_kw st "by";
      comma_separated st parse_or
    end
    else []
  in
  let having = if eat_kw st "having" then Some (parse_or st) else None in
  let order_by =
    if is_kw st "order" then begin
      advance st;
      expect_kw st "by";
      comma_separated st (fun st ->
          let e = parse_or st in
          let dir =
            if eat_kw st "desc" then Ast.Desc
            else begin
              ignore (eat_kw st "asc");
              Ast.Asc
            end
          in
          (e, dir))
    end
    else []
  in
  let limit = if eat_kw st "limit" then Some (int_lit st) else None in
  let offset = if eat_kw st "offset" then Some (int_lit st) else None in
  let unions = ref [] in
  while is_kw st "union" do
    advance st;
    let kind = if eat_kw st "all" then `Union_all else `Union in
    unions := (kind, parse_select st) :: !unions
  done;
  {
    Ast.distinct;
    items;
    from;
    where;
    group_by;
    having;
    order_by;
    limit;
    offset;
    unions = List.rev !unions;
  }

and parse_select_item st =
  if peek st = Token.Star then begin
    advance st;
    Ast.Sel_star
  end
  else
    match (peek st, peek2 st, peek3 st) with
    | Token.Ident t, Token.Dot, Token.Star ->
        advance st; advance st; advance st;
        Ast.Sel_table_star t
    | _ ->
        let e = parse_or st in
        let alias =
          if eat_kw st "as" then Some (ident st)
          else
            (* bare alias: an identifier that is not a clause keyword *)
            match peek st with
            | Token.Ident s
              when not
                     (List.mem (String.lowercase_ascii s)
                        [ "from"; "where"; "group"; "having"; "order"; "limit";
                          "offset"; "union"; "as"; "asc"; "desc"; "with";
                          "declassifying" ]) ->
                advance st;
                Some s
            | _ -> None
        in
        Ast.Sel_expr (e, alias)

and parse_table_expr st =
  (* comma-separated FROM list desugars to inner joins with no ON *)
  let first = parse_join_chain st in
  let rec go acc =
    if peek st = Token.Comma then begin
      advance st;
      let next = parse_join_chain st in
      go (Ast.T_join (acc, Ast.Inner, next, None))
    end
    else acc
  in
  go first

and parse_join_chain st =
  let lhs = ref (parse_table_primary st) in
  let continue_ = ref true in
  while !continue_ do
    if is_kw st "join" || (is_kw st "inner" && is_kw2 st "join") then begin
      ignore (eat_kw st "inner");
      expect_kw st "join";
      let rhs = parse_table_primary st in
      expect_kw st "on";
      let cond = parse_or st in
      lhs := Ast.T_join (!lhs, Ast.Inner, rhs, Some cond)
    end
    else if is_kw st "left" then begin
      advance st;
      ignore (eat_kw st "outer");
      expect_kw st "join";
      let rhs = parse_table_primary st in
      expect_kw st "on";
      let cond = parse_or st in
      lhs := Ast.T_join (!lhs, Ast.Left, rhs, Some cond)
    end
    else continue_ := false
  done;
  !lhs

and parse_table_primary st =
  if peek st = Token.Lparen then begin
    advance st;
    let sub = parse_select st in
    expect st Token.Rparen;
    ignore (eat_kw st "as");
    let alias = ident st in
    Ast.T_subquery (sub, alias)
  end
  else begin
    let name = ident st in
    let alias =
      if eat_kw st "as" then Some (ident st)
      else
        match peek st with
        | Token.Ident s
          when not
                 (List.mem (String.lowercase_ascii s)
                    [ "join"; "inner"; "left"; "outer"; "on"; "where"; "group";
                      "having"; "order"; "limit"; "offset"; "as"; "with";
                      "declassifying"; "union" ]) ->
            advance st;
            Some s
        | _ -> None
    in
    Ast.T_table (name, alias)
  end

(* ------------------------------------------------------------------ *)
(* Other statements                                                    *)
(* ------------------------------------------------------------------ *)

let parse_declassifying st =
  if eat_kw st "declassifying" then paren_ident_list st else []

let parse_insert st =
  expect_kw st "insert";
  expect_kw st "into";
  let table = ident st in
  let columns =
    if peek st = Token.Lparen then Some (paren_ident_list st) else None
  in
  if is_kw st "select" then begin
    let sel = parse_select st in
    let declassifying = parse_declassifying st in
    Ast.S_insert { i_table = table; i_columns = columns; i_rows = [];
                   i_select = Some sel; i_declassifying = declassifying }
  end
  else begin
    expect_kw st "values";
    let row st =
      expect st Token.Lparen;
      let vs = comma_separated st parse_or in
      expect st Token.Rparen;
      vs
    in
    let rows = comma_separated st row in
    let declassifying = parse_declassifying st in
    Ast.S_insert { i_table = table; i_columns = columns; i_rows = rows;
                   i_select = None; i_declassifying = declassifying }
  end

let parse_update st =
  expect_kw st "update";
  let table = ident st in
  expect_kw st "set";
  let set st =
    let col = ident st in
    expect st Token.Eq;
    let e = parse_or st in
    (col, e)
  in
  let sets = comma_separated st set in
  let where = if eat_kw st "where" then Some (parse_or st) else None in
  Ast.S_update { u_table = table; u_sets = sets; u_where = where }

let parse_delete st =
  expect_kw st "delete";
  expect_kw st "from";
  let table = ident st in
  let where = if eat_kw st "where" then Some (parse_or st) else None in
  Ast.S_delete { d_table = table; d_where = where }

let parse_datatype st =
  let tyname = ident st in
  (* swallow a size suffix like VARCHAR(40) *)
  if peek st = Token.Lparen then begin
    advance st;
    ignore (int_lit st);
    (match peek st with
    | Token.Comma -> advance st; ignore (int_lit st)
    | _ -> ());
    expect st Token.Rparen
  end;
  match Ifdb_rel.Datatype.of_name tyname with
  | Some ty -> ty
  | None -> fail "unknown type %s" tyname

let parse_create_table st =
  let name = ident st in
  expect st Token.Lparen;
  let cols = ref [] and cons = ref [] in
  let parse_item st =
    if is_kw st "primary" then begin
      advance st;
      expect_kw st "key";
      cons := Ast.C_primary_key (paren_ident_list st) :: !cons
    end
    else if is_kw st "unique" then begin
      advance st;
      cons := Ast.C_unique (paren_ident_list st) :: !cons
    end
    else if is_kw st "foreign" then begin
      advance st;
      expect_kw st "key";
      let cs = paren_ident_list st in
      expect_kw st "references";
      let rt = ident st in
      let rcs = paren_ident_list st in
      cons := Ast.C_foreign_key { c_cols = cs; c_ref_table = rt; c_ref_cols = rcs } :: !cons
    end
    else begin
      let cname = ident st in
      let ty = parse_datatype st in
      let not_null = ref false and pk = ref false and uq = ref false in
      let rec attrs () =
        if is_kw st "not" then begin
          advance st;
          expect_kw st "null";
          not_null := true;
          attrs ()
        end
        else if is_kw st "primary" then begin
          advance st;
          expect_kw st "key";
          pk := true;
          attrs ()
        end
        else if is_kw st "unique" then begin
          advance st;
          uq := true;
          attrs ()
        end
        else if is_kw st "references" then begin
          (* column-level FK: col REFERENCES t(c) *)
          advance st;
          let rt = ident st in
          let rcs = paren_ident_list st in
          cons :=
            Ast.C_foreign_key { c_cols = [ cname ]; c_ref_table = rt; c_ref_cols = rcs }
            :: !cons;
          attrs ()
        end
      in
      attrs ();
      cols :=
        { Ast.cd_name = cname; cd_type = ty; cd_not_null = !not_null;
          cd_primary_key = !pk; cd_unique = !uq }
        :: !cols
    end
  in
  parse_item st;
  while peek st = Token.Comma do
    advance st;
    parse_item st
  done;
  expect st Token.Rparen;
  Ast.S_create_table
    { ct_name = name; ct_columns = List.rev !cols; ct_constraints = List.rev !cons }

let parse_create_view st ~materialized =
  let name = ident st in
  expect_kw st "as";
  let q = parse_select st in
  let declassifying =
    if eat_kw st "with" then begin
      expect_kw st "declassifying";
      paren_ident_list st
    end
    else []
  in
  Ast.S_create_view
    { cv_name = name; cv_query = q; cv_declassifying = declassifying;
      cv_materialized = materialized }

let parse_create st =
  expect_kw st "create";
  if eat_kw st "table" then parse_create_table st
  else if eat_kw st "view" then parse_create_view st ~materialized:false
  else if eat_kw st "materialized" then begin
    expect_kw st "view";
    parse_create_view st ~materialized:true
  end
  else if eat_kw st "index" then begin
    let name = ident st in
    expect_kw st "on";
    let table = ident st in
    let cols = paren_ident_list st in
    Ast.S_create_index { ci_name = name; ci_table = table; ci_cols = cols }
  end
  else fail "CREATE expects TABLE, [MATERIALIZED] VIEW or INDEX"

let parse_drop st =
  expect_kw st "drop";
  let kind =
    if eat_kw st "table" then `Table
    else if eat_kw st "view" then `View
    else if eat_kw st "index" then `Index
    else fail "DROP expects TABLE, VIEW or INDEX"
  in
  Ast.S_drop (kind, ident st)

let parse_perform st =
  let name = ident st in
  let args =
    if peek st = Token.Lparen then begin
      advance st;
      if peek st = Token.Rparen then begin advance st; [] end
      else begin
        let args = comma_separated st parse_or in
        expect st Token.Rparen;
        args
      end
    end
    else []
  in
  Ast.S_perform (name, args)

let rec parse_stmt st =
  if is_kw st "explain" then begin
    advance st;
    let x_analyze = eat_kw st "analyze" in
    Ast.S_explain { x_analyze; x_stmt = parse_stmt st }
  end
  else if is_kw st "select" then Ast.S_select (parse_select st)
  else if is_kw st "insert" then parse_insert st
  else if is_kw st "update" then parse_update st
  else if is_kw st "delete" then parse_delete st
  else if is_kw st "create" then parse_create st
  else if is_kw st "drop" then parse_drop st
  else if is_kw st "begin" then begin
    advance st;
    ignore (eat_kw st "work" || eat_kw st "transaction");
    Ast.S_begin
  end
  else if is_kw st "commit" then begin advance st; Ast.S_commit end
  else if is_kw st "rollback" || is_kw st "abort" then begin
    advance st;
    Ast.S_rollback
  end
  else if is_kw st "perform" || is_kw st "call" then begin
    advance st;
    parse_perform st
  end
  else if is_kw st "prepare" then begin
    advance st;
    let name = ident st in
    expect_kw st "as";
    Ast.S_prepare { pr_name = name; pr_stmt = parse_stmt st }
  end
  else if is_kw st "execute" then begin
    advance st;
    let name = ident st in
    let args =
      if peek st = Token.Lparen then begin
        advance st;
        if peek st = Token.Rparen then begin advance st; [] end
        else begin
          let args = comma_separated st parse_or in
          expect st Token.Rparen;
          args
        end
      end
      else []
    in
    Ast.S_execute { ex_name = name; ex_args = args }
  end
  else if is_kw st "deallocate" then begin
    advance st;
    if eat_kw st "all" then Ast.S_deallocate None
    else Ast.S_deallocate (Some (ident st))
  end
  else fail "unexpected start of statement: %s" (Token.to_string (peek st))

let parse input =
  let st = { toks = Array.of_list (Lexer.tokenize input); pos = 0 } in
  let stmts = ref [] in
  while peek st <> Token.Eof do
    if peek st = Token.Semicolon then advance st
    else stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

let parse_one input =
  match parse input with
  | [ s ] -> s
  | [] -> fail "empty input"
  | _ -> fail "expected exactly one statement"

let parse_expr input =
  let st = { toks = Array.of_list (Lexer.tokenize input); pos = 0 } in
  let e = parse_or st in
  if peek st <> Token.Eof then
    fail "trailing input after expression: %s" (Token.to_string (peek st));
  e

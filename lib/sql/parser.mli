(** Recursive-descent parser for the SQL dialect.

    The dialect covers what the paper's applications and benchmarks
    need: SELECT with joins (inner and left outer), grouping,
    aggregates, ordering and limits; INSERT/UPDATE/DELETE; DDL for
    tables, views and indexes; transaction control; stored-procedure
    invocation ([PERFORM f(...)]); and the IFDB extensions
    ([DECLASSIFYING] clauses, label literals, the [_label] column).
    Subqueries are supported in FROM; scalar subqueries are not. *)

exception Parse_error of string

val parse : string -> Ast.stmt list
(** Parse a semicolon-separated script. *)

val parse_one : string -> Ast.stmt
(** Parse exactly one statement (trailing semicolon allowed). *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and the REPL). *)

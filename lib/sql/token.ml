(* Lexical tokens for the SQL dialect.  Keywords are not reserved at
   the token level; the lexer emits [Ident] and the parser matches
   keywords case-insensitively, which keeps identifiers like a column
   named "level" usable. *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Dot
  | Semicolon
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Concat (* || *)
  | Param of int (* $n placeholder, 1-based *)
  | Eof

let to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "(" | Rparen -> ")"
  | Lbrace -> "{" | Rbrace -> "}"
  | Comma -> "," | Dot -> "." | Semicolon -> ";"
  | Star -> "*" | Plus -> "+" | Minus -> "-" | Slash -> "/" | Percent -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Concat -> "||"
  | Param n -> "$" ^ string_of_int n
  | Eof -> "<eof>"

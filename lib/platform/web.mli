(** A simulated web tier.

    Stands in for Apache + PHP(-IF) in the paper's end-to-end setup
    (section 8.1): applications register request handlers; each request
    runs in a fresh {!Process} connected as the authenticated user, and
    whatever the handler returns is pushed through the output {!Gate}
    (so a contaminated handler produces a blocked response, not a
    leak).

    The tier keeps a simulated CPU clock.  Every request costs
    [base_cost_ns]; when the platform runs in IF mode, each counted
    label/authority operation additionally costs [label_op_cost_ns] —
    this models PHP-IF's interpreted-PHP overhead, which is what makes
    the paper's web-server-bound configuration 22% slower (section
    8.2.1).  Benchmarks compute throughput against wall time plus this
    simulated web CPU plus the database's simulated I/O. *)

type response = {
  status : [ `Ok | `Blocked | `Error ];
  body : string;
}

type handler = Process.t -> (string * string) list -> string
(** A handler receives the request's process and query parameters and
    returns the body to emit.  Raising
    {!Ifdb_core.Errors.Flow_violation} or failing to clear the label
    yields a [`Blocked] response. *)

type t

val create :
  ?if_platform:bool ->
  ?base_cost_ns:int ->
  ?label_op_cost_ns:int ->
  Ifdb_core.Database.t ->
  t
(** Defaults: [if_platform:true] (the PHP-IF analogue; [false] is the
    plain-PHP baseline), 200 µs base request cost, 30 µs per label
    operation. *)

val database : t -> Ifdb_core.Database.t
val gate : t -> Gate.t
val cache : t -> Auth_cache.t

val route : t -> string -> handler -> unit
(** Register a handler under a path (e.g. ["drives.php"]). *)

val handle : t -> path:string -> user:Ifdb_difc.Principal.t -> params:(string * string) list -> response
(** Run one request as the (already authenticated) [user]. *)

val requests : t -> int
val blocked : t -> int
val sim_cpu_ns : t -> int
(** Accumulated simulated web CPU time. *)

val reset_stats : t -> unit

(** Output interposition.

    The outside world has an empty label, so a process may emit bytes
    only while its own label is empty (paper sections 3.2 and 7.2:
    "PHP-IF and Python-IF interpose on output, so programs that are too
    contaminated can't release information").  Everything an
    application sends to a client goes through a gate; blocked sends
    are counted and produce no output at all. *)

type t

val create : unit -> t

val send : t -> Process.t -> string -> unit
(** Emit [data] on behalf of the process.  Raises
    {!Ifdb_core.Errors.Flow_violation} — and emits nothing — if the
    process label is not empty. *)

val try_send : t -> Process.t -> string -> bool
(** Like {!send} but returns [false] instead of raising. *)

val output : t -> string list
(** Everything successfully emitted, oldest first. *)

val last_output : t -> string option
val sent_count : t -> int
val blocked_count : t -> int
val clear : t -> unit

(** An application-platform process (the PHP-IF process model).

    The platform tracks information flow at per-process granularity
    (paper section 2): each web request runs in a process wrapping one
    database session, and {e shares its label with IFDB} — there is a
    single label, the session's, observed and manipulated here.

    The process also counts label/authority operations.  PHP-IF's
    measured overhead (24% request latency, 22% of web-bound
    throughput; section 8.2.1) comes from doing these operations in
    interpreted PHP; the benchmark harness charges a configurable
    simulated cost per counted operation to reproduce that regime. *)

module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal

type t

val create : ?cache:Auth_cache.t -> Ifdb_core.Database.session -> t
(** Wrap a session.  [cache] defaults to a fresh private cache; web
    servers pass their shared one. *)

val session : t -> Ifdb_core.Database.session
val label : t -> Label.t
val principal : t -> Principal.t
val cache : t -> Auth_cache.t

val add_secrecy : t -> Tag.t -> unit
val declassify : t -> Tag.t -> unit

val can_release : t -> bool
(** May the process release data to the outside world right now?  True
    when the label is empty, or when the principal holds authority to
    declassify every remaining tag (checked through the cache — the
    frequent path the paper's shared-memory cache exists for). *)

val release : t -> unit
(** Declassify every tag in the label; raises
    {!Ifdb_core.Errors.Authority_required} if some tag is not covered
    (the process stays partially declassified in that case — exactly
    the tags it had authority over are gone). *)

val op_count : t -> int
(** Label/authority operations performed so far (for the platform cost
    model). *)

val add_ops : t -> int -> unit
(** Charge extra platform operations (used by the web tier for
    per-request bookkeeping). *)

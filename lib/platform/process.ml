module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Db = Ifdb_core.Database

type t = {
  s : Db.session;
  pcache : Auth_cache.t;
  mutable ops : int;
}

let create ?cache s =
  let pcache =
    match cache with
    | Some c -> c
    | None -> Auth_cache.create (Db.authority (Db.database s))
  in
  { s; pcache; ops = 0 }

let session t = t.s
let label t = Db.session_label t.s
let principal t = Db.session_principal t.s
let cache t = t.pcache

let bump t = t.ops <- t.ops + 1

let add_secrecy t tag =
  bump t;
  Db.add_secrecy t.s tag

let declassify t tag =
  bump t;
  Db.declassify t.s tag

let can_release t =
  bump t;
  Auth_cache.can_declassify_label t.pcache (principal t) (label t)

let release t =
  Label.iter
    (fun tag ->
      if Auth_cache.has_authority t.pcache (principal t) tag then
        declassify t tag)
    (label t);
  bump t;
  if not (Label.is_empty (label t)) then
    Ifdb_core.Errors.authority
      "process cannot release: label %s retains tags the principal has no \
       authority to declassify"
      (Label.to_string (label t))

let op_count t = t.ops
let add_ops t n = t.ops <- t.ops + n

module Label = Ifdb_difc.Label

type t = {
  mutable emitted : string list; (* newest first *)
  mutable sent : int;
  mutable blocked : int;
}

let create () = { emitted = []; sent = 0; blocked = 0 }

let try_send t proc data =
  if Label.is_empty (Process.label proc) then begin
    t.emitted <- data :: t.emitted;
    t.sent <- t.sent + 1;
    true
  end
  else begin
    t.blocked <- t.blocked + 1;
    false
  end

let send t proc data =
  if not (try_send t proc data) then
    Ifdb_core.Errors.flow
      "output blocked: process label %s is not empty, nothing was emitted"
      (Label.to_string (Process.label proc))

let output t = List.rev t.emitted
let last_output t = match t.emitted with [] -> None | x :: _ -> Some x
let sent_count t = t.sent
let blocked_count t = t.blocked

let clear t =
  t.emitted <- [];
  t.sent <- 0;
  t.blocked <- 0

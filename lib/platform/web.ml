module Db = Ifdb_core.Database
module Errors = Ifdb_core.Errors

type response = { status : [ `Ok | `Blocked | `Error ]; body : string }
type handler = Process.t -> (string * string) list -> string

type t = {
  db : Db.t;
  the_gate : Gate.t;
  shared_cache : Auth_cache.t;
  routes : (string, handler) Hashtbl.t;
  if_platform : bool;
  base_cost_ns : int;
  label_op_cost_ns : int;
  mutable n_requests : int;
  mutable n_blocked : int;
  mutable cpu_ns : int;
}

let create ?(if_platform = true) ?(base_cost_ns = 200_000)
    ?(label_op_cost_ns = 20_000) db =
  {
    db;
    the_gate = Gate.create ();
    shared_cache = Auth_cache.create (Db.authority db);
    routes = Hashtbl.create 16;
    if_platform;
    base_cost_ns;
    label_op_cost_ns;
    n_requests = 0;
    n_blocked = 0;
    cpu_ns = 0;
  }

let database t = t.db
let gate t = t.the_gate
let cache t = t.shared_cache

let route t path handler = Hashtbl.replace t.routes path handler

let handle t ~path ~user ~params =
  t.n_requests <- t.n_requests + 1;
  match Hashtbl.find_opt t.routes path with
  | None ->
      t.cpu_ns <- t.cpu_ns + t.base_cost_ns;
      { status = `Error; body = Printf.sprintf "404 %s" path }
  | Some handler ->
      let session = Db.connect t.db ~principal:user in
      let proc = Process.create ~cache:t.shared_cache session in
      let finish status body =
        let ops = if t.if_platform then Process.op_count proc else 0 in
        t.cpu_ns <-
          t.cpu_ns + t.base_cost_ns + (ops * t.label_op_cost_ns);
        if status = `Blocked then t.n_blocked <- t.n_blocked + 1;
        { status; body }
      in
      (match handler proc params with
      | body ->
          (* interpose on output: a contaminated process emits nothing *)
          if Gate.try_send t.the_gate proc body then finish `Ok body
          else finish `Blocked ""
      | exception Errors.Flow_violation _ -> finish `Blocked ""
      | exception Errors.Authority_required _ -> finish `Blocked ""
      | exception Errors.Constraint_violation msg -> finish `Error msg
      | exception Errors.Sql_error msg -> finish `Error msg)

let requests t = t.n_requests
let blocked t = t.n_blocked
let sim_cpu_ns t = t.cpu_ns

let reset_stats t =
  t.n_requests <- 0;
  t.n_blocked <- 0;
  t.cpu_ns <- 0;
  Gate.clear t.the_gate;
  Auth_cache.reset_stats t.shared_cache

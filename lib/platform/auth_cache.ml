module Authority = Ifdb_difc.Authority
module Principal = Ifdb_difc.Principal
module Tag = Ifdb_difc.Tag
module Label = Ifdb_difc.Label

type stats = { hits : int; misses : int }

type t = {
  auth : Authority.t;
  enabled : bool;
  entries : (int * int, bool) Hashtbl.t; (* (principal, tag) -> answer *)
  mutable valid_generation : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(enabled = true) auth =
  {
    auth;
    enabled;
    entries = Hashtbl.create 256;
    valid_generation = Authority.generation auth;
    hits = 0;
    misses = 0;
  }

let has_authority t p tag =
  let g = Authority.generation t.auth in
  if g <> t.valid_generation then begin
    Hashtbl.reset t.entries;
    t.valid_generation <- g
  end;
  let key = (Principal.to_int p, Tag.to_int tag) in
  match if t.enabled then Hashtbl.find_opt t.entries key else None with
  | Some answer ->
      t.hits <- t.hits + 1;
      answer
  | None ->
      t.misses <- t.misses + 1;
      let answer = Authority.has_authority t.auth p tag in
      if t.enabled then Hashtbl.replace t.entries key answer;
      answer

let can_declassify_label t p label =
  Label.for_all (fun tag -> has_authority t p tag) label

let stats t = { hits = t.hits; misses = t.misses }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

(* The core registers its own components' gauges; the platform cache
   lives a layer above the core, so it hooks itself in. *)
let register_metrics reg t =
  let c name help read =
    ignore (Ifdb_obs.Metrics.gauge reg ~help ~kind:`Counter name read)
  in
  c "ifdb_auth_cache_hits_total" "authority checks answered from the cache"
    (fun () -> float_of_int t.hits);
  c "ifdb_auth_cache_misses_total" "authority checks computed from state"
    (fun () -> float_of_int t.misses)

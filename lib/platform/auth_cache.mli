(** The platform's shared authority cache.

    PHP-IF keeps a shared-memory cache of principal/tag values and
    authority state, because the platform checks on every response
    whether the current principal may release what the process read
    (paper section 7.2).  This module models that cache: positive and
    negative authority answers are memoized and invalidated wholesale
    whenever the authority state's generation counter moves. *)

type t

type stats = { hits : int; misses : int }

val create : ?enabled:bool -> Ifdb_difc.Authority.t -> t
(** [enabled:false] turns the cache off (every query is a miss) — the
    ablation benchmark uses this. *)

val has_authority : t -> Ifdb_difc.Principal.t -> Ifdb_difc.Tag.t -> bool
(** Cached {!Ifdb_difc.Authority.has_authority}. *)

val can_declassify_label :
  t -> Ifdb_difc.Principal.t -> Ifdb_difc.Label.t -> bool
(** Authority for every tag of the label (the release check). *)

val stats : t -> stats
val reset_stats : t -> unit

val register_metrics : Ifdb_obs.Metrics.t -> t -> unit
(** Export hit/miss counts as pull gauges (Prometheus TYPE counter)
    under [ifdb_auth_cache_*].  Typically called with
    {!Ifdb_core.Database.metrics}; registering the same cache twice
    raises (duplicate metric names). *)

(** The transaction manager: snapshot-isolation MVCC over {!Ifdb_storage.Heap}.

    Responsibilities:
    - assign xids and snapshots;
    - decide version visibility (standard MVCC rules, plus
      own-writes-visible);
    - detect write-write conflicts with the first-updater-wins rule
      (attempting to update or delete a version already stamped by a
      concurrent transaction — in progress or committed after our
      snapshot — raises {!Serialization_failure});
    - keep per-transaction write sets for rollback and for the IFDB
      commit-label rule (each write remembers the tuple's label so the
      rule in section 5.1 can be checked without touching pages);
    - drive the {!Ifdb_storage.Wal}: records per write, one fsync per
      commit (group commit falls out of batching writes per
      transaction).

    Interleaving model: the engine is single-threaded, but any number
    of transactions may be open at once and their operations may
    interleave arbitrarily — which is exactly what the concurrency
    rules are about. *)

exception Serialization_failure of string
(** A write-write conflict under snapshot isolation. *)

exception Not_in_progress of string
(** Operation on a transaction that is no longer open. *)

type status = In_progress | Committed | Aborted

type write = {
  w_heap : Ifdb_storage.Heap.t;
  w_vid : int;
  w_kind : [ `Insert | `Delete ];
  w_label : Ifdb_difc.Label.t;  (** label of the tuple written *)
  w_label_id : int;
      (** the tuple's interned label id ([-1] if uninterned), so the
          commit-label rule can compare ids and hit the flow cache
          instead of re-deriving flows from raw labels *)
}

type txn

type t

val create : ?wal:Ifdb_storage.Wal.t -> ?serializable_locking:bool -> unit -> t
(** With [serializable_locking:true] the manager additionally enforces
    table-granularity strict two-phase locking with no-wait conflict
    handling — a conservative but sound implementation of serializable
    isolation (the paper's prototype instead runs snapshot isolation
    plus the clearance rule; section 5.1).  Reads must be reported via
    {!note_read}; writes lock automatically. *)

val wal : t -> Ifdb_storage.Wal.t

val begin_txn : t -> txn
val xid : txn -> int
val state : txn -> status
val status_of : t -> int -> status

val visible : t -> txn -> Ifdb_storage.Heap.version -> bool
(** MVCC visibility of a heap version to this transaction. *)

val note_read : t -> txn -> string -> unit
(** Report that the transaction read the named table.  Under
    [serializable_locking], acquires the shared lock and raises
    {!Serialization_failure} if another open transaction holds the
    exclusive lock.  No-op otherwise. *)

val note_write : t -> txn -> string -> unit
(** Acquire the exclusive table lock (called internally by
    {!record_insert}/{!record_delete}; exposed for constraint checks
    that write logically). *)

val record_insert :
  t -> txn -> Ifdb_storage.Heap.t -> Ifdb_rel.Tuple.t -> Ifdb_storage.Heap.version
(** Insert a new version stamped with this xid; logs to the WAL and
    adds to the write set. *)

val record_delete :
  t -> txn -> Ifdb_storage.Heap.t -> Ifdb_storage.Heap.version -> unit
(** Stamp a version as deleted by this transaction.  Raises
    {!Serialization_failure} if a concurrent transaction already
    stamped it (first-updater-wins), and [Invalid_argument] if the
    version is not visible to the caller. *)

val writes : txn -> write list
(** The write set, oldest first. *)

val commit : t -> txn -> unit
(** Commit: mark committed, log, fsync. *)

val abort : t -> txn -> unit
(** Abort: mark aborted and undo xmax stamps (inserted versions become
    invisible through their aborted xmin). *)

val with_txn : t -> (txn -> 'a) -> 'a
(** Run [f] in a transaction; commit on return, abort on exception. *)

val live_xids : t -> int list
(** Xids currently in progress. *)

val oldest_visible_xid : t -> int
(** A horizon for vacuum: versions deleted by transactions that
    committed before every live snapshot are dead. *)

(** The transaction manager: snapshot-isolation MVCC over {!Ifdb_storage.Heap}.

    Responsibilities:
    - assign xids and snapshots;
    - decide version visibility (standard MVCC rules, plus
      own-writes-visible);
    - detect write-write conflicts with the first-updater-wins rule
      (attempting to update or delete a version already stamped by a
      concurrent transaction — in progress or committed after our
      snapshot — raises {!Serialization_failure});
    - keep per-transaction write sets for rollback and for the IFDB
      commit-label rule (each write remembers the tuple's label so the
      rule in section 5.1 can be checked without touching pages);
    - drive the {!Ifdb_storage.Wal}: the [Begin] record is logged
      lazily on the transaction's first write, so read-only
      transactions never touch the WAL (no records, no commit fsync);
      write transactions commit through {!Group_commit}, which can
      coalesce several commit records into one fsync.

    Interleaving model: begins and the record_* paths run on the
    session thread, but {!commit} and {!abort} are safe to call from
    concurrent domains (e.g. tasks on a domain pool): their
    bookkeeping is mutex-guarded and the WAL serializes internally. *)

exception Serialization_failure of string
(** A write-write conflict under snapshot isolation. *)

exception Not_in_progress of string
(** Operation on a transaction that is no longer open. *)

type status = In_progress | Committed | Aborted

type write = {
  w_heap : Ifdb_storage.Heap.t;
  w_vid : int;
  w_kind : [ `Insert | `Delete ];
  w_label : Ifdb_difc.Label.t;  (** label of the tuple written *)
  w_label_id : int;
      (** the tuple's interned label id ([-1] if uninterned), so the
          commit-label rule can compare ids and hit the flow cache
          instead of re-deriving flows from raw labels *)
}

type txn

type t

val create :
  ?wal:Ifdb_storage.Wal.t ->
  ?serializable_locking:bool ->
  ?commit_batch:int ->
  ?sync_commit:bool ->
  unit ->
  t
(** With [serializable_locking:true] the manager additionally enforces
    table-granularity strict two-phase locking with no-wait conflict
    handling — a conservative but sound implementation of serializable
    isolation (the paper's prototype instead runs snapshot isolation
    plus the clearance rule; section 5.1).  Reads must be reported via
    {!note_read}; writes lock automatically.

    [commit_batch] (default 1) and [sync_commit] (default false)
    configure the {!Group_commit} queue: commit fsyncs are coalesced so
    one flush covers up to [commit_batch] transactions — see
    {!Group_commit} for the deterministic vs leader/follower modes. *)

val wal : t -> Ifdb_storage.Wal.t

val group_commit : t -> Group_commit.t
(** The commit queue in front of the WAL. *)

val flush_wal : t -> unit
(** Force an fsync over any commit records still buffered by the group
    commit queue (deterministic mode leaves up to [commit_batch - 1]
    pending). *)

val begin_txn : t -> txn
val xid : txn -> int
val state : txn -> status
val status_of : t -> int -> status

val visible : t -> txn -> Ifdb_storage.Heap.version -> bool
(** MVCC visibility of a heap version to this transaction. *)

val note_read : t -> txn -> string -> unit
(** Report that the transaction read the named lock key (a table, or a
    partition/directory key — see {!partition_key}).  Under
    [serializable_locking], acquires the shared lock and raises
    {!Serialization_failure} if another open transaction holds the
    exclusive lock.  No-op otherwise.

    Locking is no-wait, so "lock wait" here means the acquisition
    check itself: its duration accumulates into {!lock_wait_ns} and,
    under a sampled {!Ifdb_obs.Span} context, becomes a ["lock.wait"]
    span whose [key] argument masks the partition suffix
    (["table#?"]). *)

val note_write : t -> txn -> string -> unit
(** Acquire the exclusive lock on a key (called internally by
    {!record_insert}/{!record_delete}; exposed for constraint checks
    that write logically).  Timed like {!note_read}. *)

val lock_wait_ns : t -> int
(** Cumulative nanoseconds spent acquiring locks: every S2PL
    acquisition check (serializable mode only — the snapshot-isolation
    default contributes nothing from statements) plus the commit-path
    wait for the manager's own mutex when the committing statement is
    under a sampled span context.  Exported as the
    [ifdb_lock_wait_ns_total] counter.  Coarse by design: it
    aggregates across all transactions and labels, so it reveals only
    whole-system contention, not per-label activity (see DESIGN.md
    §6.10 for the covert-channel audit). *)

val partition_key : string -> int -> string
(** The lock key for one label partition of a table ("table#lid").
    Writes to partitioned heaps lock at this granularity, so
    differently labeled transactions never conflict; a pruned scan
    read-locks only the partitions it visits. *)

val directory_key : string -> string
(** The per-table partition-directory key ("table@dir").  Full scans of
    a partitioned heap read-lock it; an insert creating a brand-new
    partition write-locks it — closing the phantom-partition window
    (a partition born after a scan froze its pruning could otherwise
    carry a label the scan should have conflicted with). *)

val record_insert :
  t -> txn -> Ifdb_storage.Heap.t -> Ifdb_rel.Tuple.t -> Ifdb_storage.Heap.version
(** Insert a new version stamped with this xid; logs to the WAL and
    adds to the write set. *)

val record_inserts :
  t ->
  txn ->
  Ifdb_storage.Heap.t ->
  Ifdb_rel.Tuple.t list ->
  Ifdb_storage.Heap.version list
(** Batched {!record_insert}: one heap pass for the run, WAL records
    through a single buffered batch append.  Equivalent to calling
    {!record_insert} per tuple (same versions, same write-set order,
    same WAL accounting) with less per-row overhead. *)

val record_delete :
  t -> txn -> Ifdb_storage.Heap.t -> Ifdb_storage.Heap.version -> unit
(** Stamp a version as deleted by this transaction.  Raises
    {!Serialization_failure} if a concurrent transaction already
    stamped it (first-updater-wins), and [Invalid_argument] if the
    version is not visible to the caller. *)

val writes : txn -> write list
(** The write set, oldest first. *)

val commit : t -> txn -> unit
(** Commit: mark committed, then submit the commit record to the group
    commit queue (which decides when the fsync happens).  Read-only
    transactions skip the WAL entirely — no record, no fsync.

    Under a sampled span context the commit path additionally records
    ["lock.wait"]/["lock.hold"] spans for the manager mutex (real
    contention between concurrent committers) and, if serializable
    locking acquired any S2PL locks, a ["lock.hold"] span covering
    first acquisition to commit (clipped to the statement window). *)

val abort : t -> txn -> unit
(** Abort: mark aborted and undo xmax stamps (inserted versions become
    invisible through their aborted xmin).  Logs an [Abort] record only
    if the transaction ever wrote. *)

val with_txn : t -> (txn -> 'a) -> 'a
(** Run [f] in a transaction; commit on return, abort on exception. *)

val live_xids : t -> int list
(** Xids currently in progress. *)

val oldest_visible_xid : t -> int
(** A horizon for vacuum: versions deleted by transactions that
    committed before every live snapshot are dead. *)

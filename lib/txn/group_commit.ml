module Wal = Ifdb_storage.Wal

type stats = {
  gc_submitted : int;
  gc_batches : int;
  gc_max_batch : int;
}

type t = {
  wal : Wal.t;
  batch : int;
  synchronous : bool;
  mu : Mutex.t;
  cond : Condition.t;
  mutable seq : int;          (* commit records appended so far *)
  mutable flushed : int;      (* highest seq covered by an fsync *)
  mutable flushing : bool;    (* a leader is in its gather window *)
  mutable submitted : int;
  mutable batches : int;
  mutable max_batch : int;
}

let create ?(batch = 1) ?(synchronous = false) wal =
  if batch < 1 then invalid_arg "Group_commit.create: batch must be >= 1";
  {
    wal;
    batch;
    synchronous;
    mu = Mutex.create ();
    cond = Condition.create ();
    seq = 0;
    flushed = 0;
    flushing = false;
    submitted = 0;
    batches = 0;
    max_batch = 0;
  }

let batch t = t.batch

(* Must hold [t.mu].  One fsync covers every commit record appended
   since the previous flush. *)
let flush_locked t =
  if t.seq > t.flushed then begin
    let covered = t.seq - t.flushed in
    Wal.fsync t.wal;
    t.flushed <- t.seq;
    t.batches <- t.batches + 1;
    if covered > t.max_batch then t.max_batch <- covered;
    Condition.broadcast t.cond
  end

let submit t ~xid =
  Mutex.lock t.mu;
  Wal.append t.wal (Wal.Commit xid);
  t.seq <- t.seq + 1;
  t.submitted <- t.submitted + 1;
  let my_seq = t.seq in
  if t.seq - t.flushed >= t.batch then
    (* the coalescing degree is reached: whoever got here flushes,
       covering every queued commit (deterministic on one thread) *)
    flush_locked t
  else if t.synchronous then begin
    if t.flushing then
      (* follower: a leader is gathering; it will cover our record *)
      while t.flushed < my_seq do
        Condition.wait t.cond t.mu
      done
    else begin
      (* leader: open a short gather window so concurrent committers
         can append their records behind ours, then issue one fsync
         for the whole batch *)
      t.flushing <- true;
      Mutex.unlock t.mu;
      for _ = 1 to 50 do
        Domain.cpu_relax ()
      done;
      Mutex.lock t.mu;
      flush_locked t;
      t.flushing <- false
    end
  end;
  (* asynchronous mode below the batch threshold: return immediately;
     durability arrives with the batch's flush (or an explicit
     {!flush}) — PostgreSQL's commit_delay/asynchronous-commit shape *)
  Mutex.unlock t.mu

let flush t = Mutex.protect t.mu (fun () -> flush_locked t)

let pending t = Mutex.protect t.mu (fun () -> t.seq - t.flushed)

let stats t =
  Mutex.protect t.mu (fun () ->
      {
        gc_submitted = t.submitted;
        gc_batches = t.batches;
        gc_max_batch = t.max_batch;
      })

let reset_stats t =
  Mutex.protect t.mu (fun () ->
      t.submitted <- 0;
      t.batches <- 0;
      t.max_batch <- 0)

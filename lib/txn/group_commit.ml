module Wal = Ifdb_storage.Wal
module Span = Ifdb_obs.Span

type stats = {
  gc_submitted : int;
  gc_batches : int;
  gc_max_batch : int;
}

type t = {
  wal : Wal.t;
  batch : int;
  synchronous : bool;
  mu : Mutex.t;
  cond : Condition.t;
  mutable seq : int;          (* commit records appended so far *)
  mutable flushed : int;      (* highest seq covered by an fsync *)
  mutable flushing : bool;    (* a leader is in its gather window *)
  mutable submitted : int;
  mutable batches : int;
  mutable max_batch : int;
  mutable on_wait : float -> unit;
      (* group-commit wait observer (seconds spent inside [submit]);
         called only under a sampled span context, so the unsampled
         path never reads a clock *)
}

let create ?(batch = 1) ?(synchronous = false) wal =
  if batch < 1 then invalid_arg "Group_commit.create: batch must be >= 1";
  {
    wal;
    batch;
    synchronous;
    mu = Mutex.create ();
    cond = Condition.create ();
    seq = 0;
    flushed = 0;
    flushing = false;
    submitted = 0;
    batches = 0;
    max_batch = 0;
    on_wait = ignore;
  }

let batch t = t.batch
let set_wait_observer t f = t.on_wait <- f

(* Must hold [t.mu].  One fsync covers every commit record appended
   since the previous flush. *)
let flush_locked t =
  if t.seq > t.flushed then begin
    let covered = t.seq - t.flushed in
    Wal.fsync t.wal;
    t.flushed <- t.seq;
    t.batches <- t.batches + 1;
    if covered > t.max_batch then t.max_batch <- covered;
    Condition.broadcast t.cond
  end

let submit t ~xid =
  (* wait-state attribution: under a sampled span context the whole
     submit — mutex, WAL append, and whichever wait the protocol
     dictates — becomes one "gc.wait" span whose [role] argument says
     why time was spent: [batch] flushed at the coalescing threshold,
     [leader] gathered and fsynced, [follower] blocked on a leader's
     fsync, [queued] returned immediately (asynchronous mode).
     Unsampled statements take the original path: no clock reads. *)
  let sctx = Span.current () in
  let t_enter = match sctx with Some _ -> Span.now_ns () | None -> 0 in
  let role = ref "queued" in
  Mutex.lock t.mu;
  Wal.append t.wal (Wal.Commit xid);
  t.seq <- t.seq + 1;
  t.submitted <- t.submitted + 1;
  let my_seq = t.seq in
  if t.seq - t.flushed >= t.batch then begin
    (* the coalescing degree is reached: whoever got here flushes,
       covering every queued commit (deterministic on one thread) *)
    role := "batch";
    flush_locked t
  end
  else if t.synchronous then begin
    if t.flushing then begin
      (* follower: a leader is gathering; it will cover our record *)
      role := "follower";
      while t.flushed < my_seq do
        Condition.wait t.cond t.mu
      done
    end
    else begin
      (* leader: open a short gather window so concurrent committers
         can append their records behind ours, then issue one fsync
         for the whole batch *)
      role := "leader";
      t.flushing <- true;
      Mutex.unlock t.mu;
      for _ = 1 to 50 do
        Domain.cpu_relax ()
      done;
      Mutex.lock t.mu;
      flush_locked t;
      t.flushing <- false
    end
  end;
  (* asynchronous mode below the batch threshold: return immediately;
     durability arrives with the batch's flush (or an explicit
     {!flush}) — PostgreSQL's commit_delay/asynchronous-commit shape *)
  Mutex.unlock t.mu;
  match sctx with
  | None -> ()
  | Some ctx ->
      let t_exit = Span.now_ns () in
      Span.emit ctx "gc.wait" ~args:[ ("role", !role) ] ~t0:t_enter ~t1:t_exit;
      t.on_wait (float_of_int (t_exit - t_enter) /. 1e9)

let flush t = Mutex.protect t.mu (fun () -> flush_locked t)

let pending t = Mutex.protect t.mu (fun () -> t.seq - t.flushed)

let stats t =
  Mutex.protect t.mu (fun () ->
      {
        gc_submitted = t.submitted;
        gc_batches = t.batches;
        gc_max_batch = t.max_batch;
      })

let reset_stats t =
  Mutex.protect t.mu (fun () ->
      t.submitted <- 0;
      t.batches <- 0;
      t.max_batch <- 0)

module Span = Ifdb_obs.Span

exception Serialization_failure of string
exception Not_in_progress of string

type status = In_progress | Committed | Aborted

type write = {
  w_heap : Ifdb_storage.Heap.t;
  w_vid : int;
  w_kind : [ `Insert | `Delete ];
  w_label : Ifdb_difc.Label.t;
  w_label_id : int;
}

type txn = {
  t_xid : int;
  snapshot : Snapshot.t;
  mutable t_writes : write list; (* newest first *)
  mutable t_state : status;
  mutable t_logged : bool; (* Begin record reached the WAL *)
  mutable t_read_tables : string list;  (* S2PL read locks (serializable) *)
  mutable t_write_tables : string list; (* S2PL write locks (serializable) *)
  mutable t_lock_t0 : int; (* first S2PL acquisition, ns; 0 = none *)
}

type t = {
  the_wal : Ifdb_storage.Wal.t;
  gc : Group_commit.t;
  mu : Mutex.t;
      (* guards commit/abort bookkeeping (statuses, open_txns) so
         concurrent committers on the domain pool stay sound; begin and
         the record_* paths run on the session thread as before *)
  statuses : (int, status) Hashtbl.t;
  mutable next_xid : int;
  mutable open_txns : txn list;
  locking : bool;
      (* table-granularity strict two-phase locking: the conservative
         implementation of serializable isolation; the paper's
         prototype runs snapshot isolation instead (section 5.1) *)
  lock_wait_ns : int Atomic.t;
      (* cumulative time spent acquiring locks: every S2PL
         acquisition check (serializable mode), plus the commit-path
         manager mutex when a sampled span context observed it.
         Exported as ifdb_lock_wait_ns_total. *)
}

let create ?wal ?(serializable_locking = false) ?(commit_batch = 1)
    ?(sync_commit = false) () =
  let the_wal = match wal with Some w -> w | None -> Ifdb_storage.Wal.create () in
  {
    the_wal;
    gc = Group_commit.create ~batch:commit_batch ~synchronous:sync_commit the_wal;
    mu = Mutex.create ();
    statuses = Hashtbl.create 1024;
    next_xid = 1;
    open_txns = [];
    locking = serializable_locking;
    lock_wait_ns = Atomic.make 0;
  }

let wal t = t.the_wal
let group_commit t = t.gc
let lock_wait_ns t = Atomic.get t.lock_wait_ns

let flush_wal t = Group_commit.flush t.gc

let status_of t xid =
  match Hashtbl.find_opt t.statuses xid with
  | Some s -> s
  | None -> Aborted (* unknown xid: treat as never-committed *)

let live_xids t =
  List.filter_map
    (fun txn -> if txn.t_state = In_progress then Some txn.t_xid else None)
    t.open_txns

let begin_txn t =
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  Hashtbl.replace t.statuses xid In_progress;
  let txn =
    {
      t_xid = xid;
      snapshot = Snapshot.make ~snap_xmax:xid ~in_progress:(live_xids t);
      t_writes = [];
      t_state = In_progress;
      t_logged = false;
      t_read_tables = [];
      t_write_tables = [];
      t_lock_t0 = 0;
    }
  in
  t.open_txns <- txn :: t.open_txns;
  txn

let xid txn = txn.t_xid
let state txn = txn.t_state

(* The Begin record is logged lazily, on the transaction's first write:
   a read-only transaction therefore never touches the WAL — not at
   begin, not at commit, not at abort. *)
let log_begin t txn =
  if not txn.t_logged then begin
    txn.t_logged <- true;
    Ifdb_storage.Wal.append t.the_wal (Ifdb_storage.Wal.Begin txn.t_xid)
  end

let require_open txn what =
  if txn.t_state <> In_progress then
    raise
      (Not_in_progress
         (Printf.sprintf "%s: transaction %d is not in progress" what txn.t_xid))

(* Did [other_xid]'s effects land, from [txn]'s point of view?  True
   when it committed within the snapshot horizon. *)
let committed_for t txn other_xid =
  status_of t other_xid = Committed && Snapshot.sees_xid txn.snapshot other_xid

let visible t txn (v : Ifdb_storage.Heap.version) =
  let created_visible =
    v.xmin = txn.t_xid || committed_for t txn v.xmin
  in
  if not created_visible then false
  else if v.xmax = 0 then true
  else if v.xmax = txn.t_xid then false (* deleted by self *)
  else if committed_for t txn v.xmax then false
  else if status_of t v.xmax = Aborted then true
  else true (* deleter is concurrent: still visible to us *)

(* Strict 2PL over string lock keys (no-wait: a conflict with another
   open transaction raises immediately — blocking cannot work in a
   single-threaded interleaving).  Locks die with the transaction.

   Flat heaps lock at table granularity.  Partitioned heaps lock at
   {e label-partition} granularity — "table#lid" — so differently
   labeled writers and readers never conflict; a per-table directory
   key "table@dir" closes the phantom-partition window: every full
   scan read-locks it, and an insert that creates a brand-new
   partition write-locks it (a partition born after a scan decided its
   pruning could otherwise carry a label the scan should have
   conflicted with). *)
let partition_key table lid = table ^ "#" ^ string_of_int lid
let directory_key table = table ^ "@dir"

(* Lock keys for a write of label id [lid] into [heap]; computed
   {e before} the insert so a new partition is still observable. *)
let write_lock_keys heap lid =
  let name = Ifdb_storage.Heap.name heap in
  if Ifdb_storage.Heap.partitioned heap then
    if Ifdb_storage.Heap.has_partition heap lid then [ partition_key name lid ]
    else [ partition_key name lid; directory_key name ]
  else [ name ]

(* A lock key shown to the span layer: the partition suffix is an
   interned label id, so it is masked — exports must not let lock
   traffic identify a label partition (tag names stay placeholders). *)
let redact_key key =
  match String.index_opt key '#' with
  | Some i -> String.sub key 0 i ^ "#?"
  | None -> key

(* Time one no-wait acquisition check.  Locking here never blocks —
   conflicts raise immediately — so the "wait" is the check itself;
   it still accumulates into [lock_wait_ns] (conflict or not) and
   becomes a "lock.wait" span under a sampled context.  Only ever
   called in serializable mode, so the snapshot-isolation default
   reads no clock. *)
let timed_acquire t txn key check =
  let t0 = Span.now_ns () in
  if txn.t_lock_t0 = 0 then txn.t_lock_t0 <- t0;
  Fun.protect
    ~finally:(fun () ->
      let t1 = Span.now_ns () in
      ignore (Atomic.fetch_and_add t.lock_wait_ns (t1 - t0));
      match Span.current () with
      | Some ctx ->
          Span.emit ctx "lock.wait"
            ~args:[ ("lock", "s2pl"); ("key", redact_key key) ]
            ~t0 ~t1
      | None -> ())
    check

let note_read t txn table =
  if t.locking && not (List.mem table txn.t_read_tables) then
    timed_acquire t txn table (fun () ->
        List.iter
          (fun other ->
            if other != txn && other.t_state = In_progress
               && List.mem table other.t_write_tables
            then
              raise
                (Serialization_failure
                   (Printf.sprintf
                      "serializable: table %s is write-locked by transaction %d"
                      table other.t_xid)))
          t.open_txns;
        txn.t_read_tables <- table :: txn.t_read_tables)

let note_write t txn table =
  if t.locking && not (List.mem table txn.t_write_tables) then
    timed_acquire t txn table (fun () ->
        List.iter
          (fun other ->
            if other != txn && other.t_state = In_progress
               && (List.mem table other.t_write_tables
                  || List.mem table other.t_read_tables)
            then
              raise
                (Serialization_failure
                   (Printf.sprintf
                      "serializable: table %s is locked by transaction %d" table
                      other.t_xid)))
          t.open_txns;
        txn.t_write_tables <- table :: txn.t_write_tables)

let record_insert t txn heap tuple =
  require_open txn "record_insert";
  List.iter
    (note_write t txn)
    (write_lock_keys heap (Ifdb_rel.Tuple.label_id tuple));
  log_begin t txn;
  let v = Ifdb_storage.Heap.insert heap ~xmin:txn.t_xid tuple in
  Ifdb_storage.Wal.append t.the_wal
    (Ifdb_storage.Wal.Insert
       (Ifdb_storage.Heap.name heap, v.vid,
        Ifdb_storage.Heap.tuple_bytes heap tuple));
  txn.t_writes <-
    { w_heap = heap; w_vid = v.vid; w_kind = `Insert;
      w_label = Ifdb_rel.Tuple.label tuple;
      w_label_id = Ifdb_rel.Tuple.label_id tuple }
    :: txn.t_writes;
  v

(* Batched variant of [record_insert]: one heap pass, then the WAL
   records of the whole run through a single buffered batch append.
   Returns the new versions in tuple order. *)
let record_inserts t txn heap tuples =
  require_open txn "record_inserts";
  (if t.locking then
     (* one key set per distinct label in the run, computed before any
        insert lands *)
     let seen = Hashtbl.create 4 in
     List.iter
       (fun tuple ->
         let lid = Ifdb_rel.Tuple.label_id tuple in
         if not (Hashtbl.mem seen lid) then begin
           Hashtbl.add seen lid ();
           List.iter (note_write t txn) (write_lock_keys heap lid)
         end)
       tuples);
  log_begin t txn;
  let name = Ifdb_storage.Heap.name heap in
  let versions =
    List.map (fun tuple -> Ifdb_storage.Heap.insert heap ~xmin:txn.t_xid tuple)
      tuples
  in
  let records =
    List.map2
      (fun tuple (v : Ifdb_storage.Heap.version) ->
        Ifdb_storage.Wal.Insert
          (name, v.vid, Ifdb_storage.Heap.tuple_bytes heap tuple))
      tuples versions
  in
  Ifdb_storage.Wal.append_batch t.the_wal records;
  let ws =
    List.map2
      (fun tuple (v : Ifdb_storage.Heap.version) ->
        { w_heap = heap; w_vid = v.vid; w_kind = `Insert;
          w_label = Ifdb_rel.Tuple.label tuple;
          w_label_id = Ifdb_rel.Tuple.label_id tuple })
      tuples versions
  in
  (* [t_writes] is newest-first: prepending the reversed run keeps the
     overall order identical to per-tuple [record_insert] calls *)
  txn.t_writes <- List.rev_append ws txn.t_writes;
  versions

let record_delete t txn heap (v : Ifdb_storage.Heap.version) =
  require_open txn "record_delete";
  (if Ifdb_storage.Heap.partitioned heap then
     note_write t txn
       (partition_key (Ifdb_storage.Heap.name heap)
          (Ifdb_rel.Tuple.label_id v.tuple))
   else note_write t txn (Ifdb_storage.Heap.name heap));
  log_begin t txn;
  if not (visible t txn v) then
    invalid_arg "record_delete: version not visible to this transaction";
  (match v.xmax with
  | 0 -> ()
  | other when other = txn.t_xid -> ()
  | other -> (
      match status_of t other with
      | Aborted -> () (* stale stamp from an aborted deleter *)
      | In_progress ->
          raise
            (Serialization_failure
               (Printf.sprintf
                  "tuple in %s is being updated by concurrent transaction %d"
                  (Ifdb_storage.Heap.name heap) other))
      | Committed ->
          raise
            (Serialization_failure
               (Printf.sprintf
                  "tuple in %s was updated by transaction %d after our snapshot"
                  (Ifdb_storage.Heap.name heap) other))));
  Ifdb_storage.Heap.set_xmax heap ~vid:v.vid ~xid:txn.t_xid;
  Ifdb_storage.Wal.append t.the_wal
    (Ifdb_storage.Wal.Delete (Ifdb_storage.Heap.name heap, v.vid));
  txn.t_writes <-
    { w_heap = heap; w_vid = v.vid; w_kind = `Delete;
      w_label = Ifdb_rel.Tuple.label v.tuple;
      w_label_id = Ifdb_rel.Tuple.label_id v.tuple }
    :: txn.t_writes

let writes txn = List.rev txn.t_writes

let close t txn =
  t.open_txns <- List.filter (fun o -> o.t_xid <> txn.t_xid) t.open_txns

let commit t txn =
  require_open txn "commit";
  let mark_committed () =
    txn.t_state <- Committed;
    Hashtbl.replace t.statuses txn.t_xid Committed;
    close t txn
  in
  (match Span.current () with
  | None -> Mutex.protect t.mu mark_committed
  | Some ctx ->
      (* commit-path lock attribution: how long acquiring the
         manager's commit mutex took (wait — real contention with
         concurrent committers on the domain pool) vs how long the
         critical section held it (hold).  If serializable locking
         acquired S2PL locks, their hold — first acquisition to
         commit, clipped to this statement — is recorded too. *)
      let t0 = Span.now_ns () in
      Mutex.lock t.mu;
      let t1 = Span.now_ns () in
      Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) mark_committed;
      let t2 = Span.now_ns () in
      ignore (Atomic.fetch_and_add t.lock_wait_ns (t1 - t0));
      Span.emit ctx "lock.wait" ~args:[ ("lock", "manager") ] ~t0 ~t1;
      Span.emit ctx "lock.hold" ~args:[ ("lock", "manager") ] ~t0:t1 ~t1:t2;
      if txn.t_lock_t0 > 0 then
        Span.emit ctx "lock.hold"
          ~args:[ ("lock", "s2pl") ]
          ~t0:txn.t_lock_t0 ~t1:t2);
  (* committed deletes retire their versions from the partition live
     counts (directory stats; scan pruning keys on the non-vacuumed
     counts, which only vacuum shrinks) *)
  List.iter
    (fun w ->
      match w.w_kind with
      | `Delete -> Ifdb_storage.Heap.retire_version w.w_heap ~lid:w.w_label_id
      | `Insert -> ())
    txn.t_writes;
  (* Read-only transactions never logged a Begin, so there is nothing
     to make durable: skip the WAL (and its fsync) entirely. *)
  if txn.t_logged then Group_commit.submit t.gc ~xid:txn.t_xid

let abort t txn =
  if txn.t_state = In_progress then begin
    Mutex.protect t.mu (fun () ->
        txn.t_state <- Aborted;
        Hashtbl.replace t.statuses txn.t_xid Aborted;
        close t txn);
    (* Undo delete stamps so later writers are not blocked by a ghost;
       inserted versions die via their aborted xmin (and retire from
       the partition live counts now). *)
    List.iter
      (fun w ->
        match w.w_kind with
        | `Delete -> Ifdb_storage.Heap.clear_xmax w.w_heap ~vid:w.w_vid ~xid:txn.t_xid
        | `Insert -> Ifdb_storage.Heap.retire_version w.w_heap ~lid:w.w_label_id)
      txn.t_writes;
    if txn.t_logged then
      Ifdb_storage.Wal.append t.the_wal (Ifdb_storage.Wal.Abort txn.t_xid)
  end

let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | result ->
      if txn.t_state = In_progress then commit t txn;
      result
  | exception e ->
      abort t txn;
      raise e

let oldest_visible_xid t =
  List.fold_left
    (fun acc txn -> min acc txn.snapshot.Snapshot.snap_xmax)
    t.next_xid t.open_txns

exception Serialization_failure of string
exception Not_in_progress of string

type status = In_progress | Committed | Aborted

type write = {
  w_heap : Ifdb_storage.Heap.t;
  w_vid : int;
  w_kind : [ `Insert | `Delete ];
  w_label : Ifdb_difc.Label.t;
  w_label_id : int;
}

type txn = {
  t_xid : int;
  snapshot : Snapshot.t;
  mutable t_writes : write list; (* newest first *)
  mutable t_state : status;
  mutable t_read_tables : string list;  (* S2PL read locks (serializable) *)
  mutable t_write_tables : string list; (* S2PL write locks (serializable) *)
}

type t = {
  the_wal : Ifdb_storage.Wal.t;
  statuses : (int, status) Hashtbl.t;
  mutable next_xid : int;
  mutable open_txns : txn list;
  locking : bool;
      (* table-granularity strict two-phase locking: the conservative
         implementation of serializable isolation; the paper's
         prototype runs snapshot isolation instead (section 5.1) *)
}

let create ?wal ?(serializable_locking = false) () =
  let the_wal = match wal with Some w -> w | None -> Ifdb_storage.Wal.create () in
  { the_wal; statuses = Hashtbl.create 1024; next_xid = 1; open_txns = [];
    locking = serializable_locking }

let wal t = t.the_wal

let status_of t xid =
  match Hashtbl.find_opt t.statuses xid with
  | Some s -> s
  | None -> Aborted (* unknown xid: treat as never-committed *)

let live_xids t =
  List.filter_map
    (fun txn -> if txn.t_state = In_progress then Some txn.t_xid else None)
    t.open_txns

let begin_txn t =
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  Hashtbl.replace t.statuses xid In_progress;
  let txn =
    {
      t_xid = xid;
      snapshot = Snapshot.make ~snap_xmax:xid ~in_progress:(live_xids t);
      t_writes = [];
      t_state = In_progress;
      t_read_tables = [];
      t_write_tables = [];
    }
  in
  t.open_txns <- txn :: t.open_txns;
  Ifdb_storage.Wal.append t.the_wal (Ifdb_storage.Wal.Begin xid);
  txn

let xid txn = txn.t_xid
let state txn = txn.t_state

let require_open txn what =
  if txn.t_state <> In_progress then
    raise
      (Not_in_progress
         (Printf.sprintf "%s: transaction %d is not in progress" what txn.t_xid))

(* Did [other_xid]'s effects land, from [txn]'s point of view?  True
   when it committed within the snapshot horizon. *)
let committed_for t txn other_xid =
  status_of t other_xid = Committed && Snapshot.sees_xid txn.snapshot other_xid

let visible t txn (v : Ifdb_storage.Heap.version) =
  let created_visible =
    v.xmin = txn.t_xid || committed_for t txn v.xmin
  in
  if not created_visible then false
  else if v.xmax = 0 then true
  else if v.xmax = txn.t_xid then false (* deleted by self *)
  else if committed_for t txn v.xmax then false
  else if status_of t v.xmax = Aborted then true
  else true (* deleter is concurrent: still visible to us *)

(* Table-granularity strict 2PL (no-wait: a conflict with another open
   transaction raises immediately — blocking cannot work in a
   single-threaded interleaving).  Locks die with the transaction. *)
let note_read t txn table =
  if t.locking && not (List.mem table txn.t_read_tables) then begin
    List.iter
      (fun other ->
        if other != txn && other.t_state = In_progress
           && List.mem table other.t_write_tables
        then
          raise
            (Serialization_failure
               (Printf.sprintf
                  "serializable: table %s is write-locked by transaction %d"
                  table other.t_xid)))
      t.open_txns;
    txn.t_read_tables <- table :: txn.t_read_tables
  end

let note_write t txn table =
  if t.locking && not (List.mem table txn.t_write_tables) then begin
    List.iter
      (fun other ->
        if other != txn && other.t_state = In_progress
           && (List.mem table other.t_write_tables
              || List.mem table other.t_read_tables)
        then
          raise
            (Serialization_failure
               (Printf.sprintf
                  "serializable: table %s is locked by transaction %d" table
                  other.t_xid)))
      t.open_txns;
    txn.t_write_tables <- table :: txn.t_write_tables
  end

let record_insert t txn heap tuple =
  require_open txn "record_insert";
  note_write t txn (Ifdb_storage.Heap.name heap);
  let v = Ifdb_storage.Heap.insert heap ~xmin:txn.t_xid tuple in
  Ifdb_storage.Wal.append t.the_wal
    (Ifdb_storage.Wal.Insert
       (Ifdb_storage.Heap.name heap, v.vid,
        Ifdb_storage.Heap.tuple_bytes heap tuple));
  txn.t_writes <-
    { w_heap = heap; w_vid = v.vid; w_kind = `Insert;
      w_label = Ifdb_rel.Tuple.label tuple;
      w_label_id = Ifdb_rel.Tuple.label_id tuple }
    :: txn.t_writes;
  v

let record_delete t txn heap (v : Ifdb_storage.Heap.version) =
  require_open txn "record_delete";
  note_write t txn (Ifdb_storage.Heap.name heap);
  if not (visible t txn v) then
    invalid_arg "record_delete: version not visible to this transaction";
  (match v.xmax with
  | 0 -> ()
  | other when other = txn.t_xid -> ()
  | other -> (
      match status_of t other with
      | Aborted -> () (* stale stamp from an aborted deleter *)
      | In_progress ->
          raise
            (Serialization_failure
               (Printf.sprintf
                  "tuple in %s is being updated by concurrent transaction %d"
                  (Ifdb_storage.Heap.name heap) other))
      | Committed ->
          raise
            (Serialization_failure
               (Printf.sprintf
                  "tuple in %s was updated by transaction %d after our snapshot"
                  (Ifdb_storage.Heap.name heap) other))));
  Ifdb_storage.Heap.set_xmax heap ~vid:v.vid ~xid:txn.t_xid;
  Ifdb_storage.Wal.append t.the_wal
    (Ifdb_storage.Wal.Delete (Ifdb_storage.Heap.name heap, v.vid));
  txn.t_writes <-
    { w_heap = heap; w_vid = v.vid; w_kind = `Delete;
      w_label = Ifdb_rel.Tuple.label v.tuple;
      w_label_id = Ifdb_rel.Tuple.label_id v.tuple }
    :: txn.t_writes

let writes txn = List.rev txn.t_writes

let close t txn =
  t.open_txns <- List.filter (fun o -> o.t_xid <> txn.t_xid) t.open_txns

let commit t txn =
  require_open txn "commit";
  txn.t_state <- Committed;
  Hashtbl.replace t.statuses txn.t_xid Committed;
  Ifdb_storage.Wal.append t.the_wal (Ifdb_storage.Wal.Commit txn.t_xid);
  Ifdb_storage.Wal.fsync t.the_wal;
  close t txn

let abort t txn =
  if txn.t_state = In_progress then begin
    txn.t_state <- Aborted;
    Hashtbl.replace t.statuses txn.t_xid Aborted;
    (* Undo delete stamps so later writers are not blocked by a ghost;
       inserted versions die via their aborted xmin. *)
    List.iter
      (fun w ->
        match w.w_kind with
        | `Delete -> Ifdb_storage.Heap.clear_xmax w.w_heap ~vid:w.w_vid ~xid:txn.t_xid
        | `Insert -> ())
      txn.t_writes;
    Ifdb_storage.Wal.append t.the_wal (Ifdb_storage.Wal.Abort txn.t_xid);
    close t txn
  end

let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | result ->
      if txn.t_state = In_progress then commit t txn;
      result
  | exception e ->
      abort t txn;
      raise e

let oldest_visible_xid t =
  List.fold_left
    (fun acc txn -> min acc txn.snapshot.Snapshot.snap_xmax)
    t.next_xid t.open_txns

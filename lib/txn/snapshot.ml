type t = { snap_xmax : int; in_progress : (int, unit) Hashtbl.t }

let make ~snap_xmax ~in_progress =
  let tbl = Hashtbl.create (List.length in_progress) in
  List.iter (fun x -> Hashtbl.replace tbl x ()) in_progress;
  { snap_xmax; in_progress = tbl }

let sees_xid t xid = xid < t.snap_xmax && not (Hashtbl.mem t.in_progress xid)

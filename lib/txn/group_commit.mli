(** Group commit: coalescing the per-transaction commit fsync.

    The paper's CarTel deployment batched 200 inserts per transaction
    "partly to compensate for the lack of group commit in PostgreSQL"
    (section 8.2.2).  This module supplies the missing group commit: a
    commit queue in front of {!Ifdb_storage.Wal} that lets one fsync
    cover the commit records of several transactions.

    Two coalescing modes, selected at {!create}:

    - {b deterministic} ([synchronous = false], the default): every
      [batch]-th submitted commit triggers the fsync; earlier commits
      in the window return immediately and become durable with the
      batch (asynchronous-commit semantics, like PostgreSQL's
      [synchronous_commit = off] with [commit_delay]).  This mode is
      deterministic on a single core, so the container can still
      measure coalescing through {!Ifdb_storage.Wal.stats}.
    - {b synchronous leader/follower} ([synchronous = true]): the
      first committer to arrive becomes the leader, opens a short
      gather window so concurrent sessions (e.g. tasks on
      {!Ifdb_engine.Domain_pool}) can append their commit records
      behind it, then issues one fsync for the whole batch; followers
      block until an fsync covers their record, preserving durability
      on return.

    [batch = 1] degenerates to the classic one-fsync-per-commit path. *)

type t

type stats = {
  gc_submitted : int;  (** commit records submitted *)
  gc_batches : int;    (** fsyncs issued (coalesced flushes) *)
  gc_max_batch : int;  (** most commits covered by a single fsync *)
}

val create : ?batch:int -> ?synchronous:bool -> Ifdb_storage.Wal.t -> t
(** [batch] is the coalescing degree (default 1); raises
    [Invalid_argument] if < 1. *)

val batch : t -> int

val submit : t -> xid:int -> unit
(** Append the transaction's [Commit] record and arrange for its fsync
    per the mode above.  Thread-safe.  Under a sampled
    {!Ifdb_obs.Span} context the submit is recorded as a ["gc.wait"]
    span whose [role] argument distinguishes the batch-threshold
    flusher, the synchronous leader (gather window + fsync), a blocked
    follower, and asynchronous queueing; unsampled submits read no
    clock. *)

val set_wait_observer : t -> (float -> unit) -> unit
(** Observer for time spent inside {!submit}, in seconds.  Invoked
    only for submits under a sampled span context (a sampled view,
    like the span ring).  The database points this at its
    [ifdb_group_commit_wait_seconds] histogram. *)

val flush : t -> unit
(** Force an fsync over any still-buffered commit records (no-op when
    none are pending).  Used at checkpoint/shutdown and by tests. *)

val pending : t -> int
(** Commit records appended but not yet covered by an fsync. *)

val stats : t -> stats
val reset_stats : t -> unit

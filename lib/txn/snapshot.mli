(** Transaction snapshots for snapshot isolation.

    A snapshot captures, at BEGIN time, the set of transactions whose
    effects are invisible: everything not yet committed then.  The
    prototype in the paper runs PostgreSQL's MVCC under snapshot
    isolation (section 5.1); we reproduce that choice. *)

type t = {
  snap_xmax : int;
  (** First xid invisible to this snapshot: every xid >= this started
      after the snapshot was taken. *)
  in_progress : (int, unit) Hashtbl.t;
  (** Xids below [snap_xmax] that were still running at snapshot
      time. *)
}

val make : snap_xmax:int -> in_progress:int list -> t

val sees_xid : t -> int -> bool
(** [sees_xid s xid]: did [xid] commit before this snapshot was taken,
    as far as timing is concerned?  (The caller must additionally check
    that [xid] actually committed.) *)

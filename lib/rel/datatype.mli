(** Column datatypes and type checking. *)

type t =
  | Tint
  | Tfloat
  | Ttext
  | Tbool
  | Tints  (** integer array; used by the [_label] system column *)

val equal : t -> t -> bool

val accepts : t -> Value.t -> bool
(** [accepts ty v]: may a column of type [ty] store [v]?  NULL is
    accepted by every type (nullability is checked separately); ints
    are accepted by float columns (widening). *)

val name : t -> string
(** SQL name: INT, FLOAT, TEXT, BOOL, INT[]. *)

val of_name : string -> t option
(** Case-insensitive parse of a SQL type name.  Recognizes common
    aliases (INTEGER, BIGINT, DOUBLE, VARCHAR, TIMESTAMP → INT…). *)

val pp : Format.formatter -> t -> unit

(** SQL values.

    The engine is dynamically typed at this layer: every slot holds a
    {!t} and the expression evaluator enforces SQL coercion rules.
    [Ints] exists for the [_label] system column, which the paper
    exposes as an [INT[]] array (section 4.2). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool
  | Ints of int array  (** integer array; the type of [_label] *)

val equal : t -> t -> bool
(** Structural equality; [Null] equals only [Null] (this is storage
    equality, not SQL [=], which treats NULL as unknown). *)

val compare : t -> t -> int
(** Total order for indexing and sorting: Null < Bool < Int/Float
    (numeric, compared by value) < Text < Ints.  Ints and floats
    compare numerically with each other. *)

val is_null : t -> bool

val to_int : t -> int
(** Numeric coercion; raises [Invalid_argument] on non-numeric. *)

val to_float : t -> float
val to_bool : t -> bool
val to_text : t -> string

val byte_size : t -> int
(** On-page size in the storage cost model: ints and floats 8 bytes,
    bool 1, text 4+length, int arrays 4+4n, NULL 0 (bitmap-resident). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val hash : t -> int

type column = { col_name : string; col_type : Datatype.t; nullable : bool }
type unique = { uq_name : string; uq_cols : string list }

type foreign_key = {
  fk_name : string;
  fk_cols : string list;
  fk_ref_table : string;
  fk_ref_cols : string list;
}

type t = {
  table_name : string;
  columns : column array;
  primary_key : string list;
  uniques : unique list;
  foreign_keys : foreign_key list;
}

let norm = String.lowercase_ascii

let col_index_opt t name =
  let name = norm name in
  let n = Array.length t.columns in
  let rec go i =
    if i >= n then None
    else if norm t.columns.(i).col_name = name then Some i
    else go (i + 1)
  in
  go 0

let col_index t name =
  match col_index_opt t name with Some i -> i | None -> raise Not_found

let has_column t name = col_index_opt t name <> None
let column t i = t.columns.(i)
let arity t = Array.length t.columns

let make ~name ~columns ?(nullable = []) ?(primary_key = []) ?(uniques = [])
    ?(foreign_keys = []) () =
  let nullable = List.map norm nullable in
  let cols =
    Array.of_list
      (List.map
         (fun (cname, ty) ->
           { col_name = cname; col_type = ty; nullable = List.mem (norm cname) nullable })
         columns)
  in
  let t =
    {
      table_name = name;
      columns = cols;
      primary_key;
      uniques = List.map (fun (uq_name, uq_cols) -> { uq_name; uq_cols }) uniques;
      foreign_keys;
    }
  in
  let check_cols what cs =
    List.iter
      (fun c ->
        if not (has_column t c) then
          invalid_arg
            (Printf.sprintf "Schema.make(%s): %s column %S does not exist" name
               what c))
      cs
  in
  check_cols "primary key" primary_key;
  List.iter (fun u -> check_cols ("unique " ^ u.uq_name) u.uq_cols) t.uniques;
  List.iter (fun fk -> check_cols ("fk " ^ fk.fk_name) fk.fk_cols) foreign_keys;
  t

let all_uniques t =
  let pk =
    match t.primary_key with
    | [] -> []
    | cols -> [ { uq_name = t.table_name ^ "_pkey"; uq_cols = cols } ]
  in
  pk @ t.uniques

let check_values t values =
  if Array.length values <> Array.length t.columns then
    Error
      (Printf.sprintf "table %s expects %d columns, got %d" t.table_name
         (Array.length t.columns) (Array.length values))
  else begin
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then begin
          let c = t.columns.(i) in
          if Value.is_null v && not c.nullable then
            err :=
              Some
                (Printf.sprintf "null value in column %S of table %s violates NOT NULL"
                   c.col_name t.table_name)
          else if not (Datatype.accepts c.col_type v) then
            err :=
              Some
                (Printf.sprintf "column %S of table %s is %s but value is %s"
                   c.col_name t.table_name
                   (Datatype.name c.col_type)
                   (Value.to_string v))
        end)
      values;
    match !err with None -> Ok () | Some e -> Error e
  end

let pp ppf t =
  Format.fprintf ppf "@[<v 2>TABLE %s (" t.table_name;
  Array.iter
    (fun c ->
      Format.fprintf ppf "@,%s %a%s," c.col_name Datatype.pp c.col_type
        (if c.nullable then "" else " NOT NULL"))
    t.columns;
  (match t.primary_key with
  | [] -> ()
  | pk -> Format.fprintf ppf "@,PRIMARY KEY (%s)" (String.concat ", " pk));
  Format.fprintf ppf "@]@,)"

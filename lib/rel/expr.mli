(** Runtime expressions over resolved column positions.

    The SQL front end produces name-based expressions; the planner
    resolves names to positions and lowers them to this type, which the
    executor evaluates per row.  Evaluation follows SQL three-valued
    logic: comparisons and arithmetic over NULL yield NULL, [And]/[Or]
    use Kleene semantics, and a WHERE clause accepts a row only when
    the predicate is definitely true. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type unop = Not | Neg

type t =
  | Const of Value.t
  | Col of int                  (** row position *)
  | Row_label                   (** the row's information-flow label, as INT[] —
                                    what the [_label] system column resolves to *)
  | Lazy_const of Value.t Lazy.t
      (** a value computed at most once per statement — how the planner
          lowers uncorrelated scalar subqueries and EXISTS *)
  | Param of int
      (** [$n] prepared-statement placeholder (1-based): a pure read of
          the environment's parameter slot array, bound per execution *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Is_null of t
  | Is_not_null of t
  | In_list of t * Value.t list
  | Like of t * string          (** SQL LIKE with [%] and [_] *)
  | Fn of string * t list       (** scalar function from the environment *)
  | Case of (t * t) list * t    (** WHEN cond THEN v …, ELSE v *)

type env = {
  fn : string -> Value.t list -> Value.t;
  mutable params : Value.t array;
}
(** Scalar-function environment.  [fn name args] evaluates a named
    function; it should raise [Failure] for unknown names.  [params]
    holds the current EXECUTE call's bound values; [Param n] reads slot
    [n-1] and raises {!Type_error} when unbound. *)

val null_env : env
(** Environment with no functions (any call fails). *)

exception Type_error of string

val eval : env -> Tuple.t -> t -> Value.t
(** Evaluate against a labeled row.  Raises {!Type_error} on ill-typed
    operations (e.g. adding text to int). *)

val eval_pred : env -> Tuple.t -> t -> bool
(** Predicate evaluation: true iff the result is [Bool true]
    (NULL counts as not-true, per SQL WHERE). *)

val like_match : string -> pattern:string -> bool
(** SQL LIKE semantics: [%] matches any run, [_] one character. *)

val columns_used : t -> int list
(** Sorted list of distinct column positions referenced. *)

val shift_columns : by:int -> t -> t
(** Add [by] to every column index (used when gluing join sides). *)

val pp : Format.formatter -> t -> unit

val map_columns : (int -> int) -> t -> t
(** Rewrite every column index through [f]. *)

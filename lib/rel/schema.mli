(** Table schemas: columns, keys, and constraint declarations.

    The [_label] system column (section 4.2) is not part of the
    user-visible column list; it lives in {!Tuple.t} and surfaces in
    queries through the planner. *)

type column = {
  col_name : string;
  col_type : Datatype.t;
  nullable : bool;
}

type unique = {
  uq_name : string;
  uq_cols : string list;  (** column names forming the key *)
}

(** A foreign-key declaration.  Enforcement, including the paper's
    Foreign Key Rule (section 5.2.2), lives in the engine. *)
type foreign_key = {
  fk_name : string;
  fk_cols : string list;        (** referencing columns, in this table *)
  fk_ref_table : string;
  fk_ref_cols : string list;    (** referenced columns (a unique key there) *)
}

type t = {
  table_name : string;
  columns : column array;
  primary_key : string list;    (** empty for keyless tables *)
  uniques : unique list;        (** additional unique constraints *)
  foreign_keys : foreign_key list;
}

val make :
  name:string ->
  columns:(string * Datatype.t) list ->
  ?nullable:string list ->
  ?primary_key:string list ->
  ?uniques:(string * string list) list ->
  ?foreign_keys:foreign_key list ->
  unit ->
  t
(** Convenience constructor.  Columns listed in [nullable] accept NULL
    (all others are NOT NULL); validates that key/FK columns exist. *)

val col_index : t -> string -> int
(** Position of a column (case-insensitive); raises [Not_found]. *)

val col_index_opt : t -> string -> int option
val has_column : t -> string -> bool
val column : t -> int -> column
val arity : t -> int

val all_uniques : t -> unique list
(** The primary key (if any, named ["<table>_pkey"]) plus declared
    uniques. *)

val check_values : t -> Value.t array -> (unit, string) result
(** Arity, type and NOT NULL validation for a candidate tuple. *)

val pp : Format.formatter -> t -> unit

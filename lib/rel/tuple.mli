(** Tuples: a value vector plus an immutable information-flow label
    (section 4.1 — IFDB labels at tuple granularity). *)

type t = private {
  values : Value.t array;
  label : Ifdb_difc.Label.t;
}

val make : values:Value.t array -> label:Ifdb_difc.Label.t -> t
val values : t -> Value.t array
val label : t -> Ifdb_difc.Label.t
val get : t -> int -> Value.t
val arity : t -> int

val project : t -> int array -> t
(** [project t idxs] keeps the selected columns; the label is
    unchanged (every field carries the whole tuple's contamination). *)

val byte_size : t -> int
(** Storage footprint in the paper's cost model (section 8.3): a
    24-byte header (which includes the label-length byte), the values,
    and 4 bytes per label tag. *)

val byte_size_unlabeled : t -> int
(** Footprint with IFC compiled out: no label bytes at all — the
    baseline ("PostgreSQL") representation used by the benchmarks. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

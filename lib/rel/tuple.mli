(** Tuples: a value vector plus an immutable information-flow label
    (section 4.1 — IFDB labels at tuple granularity). *)

type t = private {
  values : Value.t array;
  label : Ifdb_difc.Label.t;
  label_id : int;
      (** the label's {!Ifdb_difc.Label_store} id, or [-1] when the
          tuple was built without interning (derived query rows).
          Mirrors the paper's 4-byte [_label] reference into the
          deduplicated label table (section 7.1). *)
}

val make : values:Value.t array -> label:Ifdb_difc.Label.t -> t
(** An uninterned tuple ([label_id = -1]) — except that the empty
    label is always id 0 in every store, so public tuples are born
    interned. *)

val make_interned :
  values:Value.t array -> label:Ifdb_difc.Label.t -> label_id:int -> t
(** A tuple whose label has been interned; [label] should be the
    store's canonical value for [label_id] so equality checks hit the
    pointer fast path.  Raises [Invalid_argument] on a negative id. *)

val values : t -> Value.t array
val label : t -> Ifdb_difc.Label.t

val label_id : t -> int
(** The interned label id, or [-1] if unknown.  Storage and the
    enforcement paths compare label ids instead of labels whenever
    both sides are interned. *)

val get : t -> int -> Value.t
val arity : t -> int

val project : t -> int array -> t
(** [project t idxs] keeps the selected columns; the label is
    unchanged (every field carries the whole tuple's contamination). *)

val byte_size : t -> int
(** Storage footprint in the paper's cost model (section 8.3): a
    24-byte header (which includes the label-length byte), the values,
    and 4 bytes per label tag. *)

val byte_size_unlabeled : t -> int
(** Footprint with IFC compiled out: no label bytes at all — the
    baseline ("PostgreSQL") representation used by the benchmarks. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

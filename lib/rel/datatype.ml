type t = Tint | Tfloat | Ttext | Tbool | Tints

let equal a b =
  match (a, b) with
  | Tint, Tint | Tfloat, Tfloat | Ttext, Ttext | Tbool, Tbool | Tints, Tints ->
      true
  | (Tint | Tfloat | Ttext | Tbool | Tints), _ -> false

let accepts ty (v : Value.t) =
  match (ty, v) with
  | _, Null -> true
  | Tint, Int _ -> true
  | Tfloat, (Float _ | Int _) -> true
  | Ttext, Text _ -> true
  | Tbool, Bool _ -> true
  | Tints, Ints _ -> true
  | (Tint | Tfloat | Ttext | Tbool | Tints), _ -> false

let name = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Ttext -> "TEXT"
  | Tbool -> "BOOL"
  | Tints -> "INT[]"

let of_name s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "SERIAL" | "TIMESTAMP" -> Some Tint
  | "FLOAT" | "DOUBLE" | "REAL" | "NUMERIC" | "DECIMAL" -> Some Tfloat
  | "TEXT" | "VARCHAR" | "CHAR" | "STRING" -> Some Ttext
  | "BOOL" | "BOOLEAN" -> Some Tbool
  | "INT[]" -> Some Tints
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)

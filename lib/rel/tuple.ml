type t = {
  values : Value.t array;
  label : Ifdb_difc.Label.t;
  label_id : int;
}

(* Every store interns the empty label as id 0 (Label_store.empty_id),
   so publicly-labeled tuples are born interned even off the storage
   path; any other label needs an explicit store id. *)
let make ~values ~label =
  { values; label; label_id = (if Ifdb_difc.Label.is_empty label then 0 else -1) }

let make_interned ~values ~label ~label_id =
  if label_id < 0 then invalid_arg "Tuple.make_interned: negative label id";
  { values; label; label_id }

let values t = t.values
let label t = t.label
let label_id t = t.label_id
let get t i = t.values.(i)
let arity t = Array.length t.values

let project t idxs =
  { t with values = Array.map (fun i -> t.values.(i)) idxs }

let header_bytes = 24

let values_bytes t =
  Array.fold_left (fun acc v -> acc + Value.byte_size v) 0 t.values

let byte_size t =
  header_bytes + values_bytes t + Ifdb_difc.Label.byte_size t.label

let byte_size_unlabeled t = header_bytes + values_bytes t

let equal a b =
  Ifdb_difc.Label.equal a.label b.label
  && Array.length a.values = Array.length b.values
  && Array.for_all2 Value.equal a.values b.values

let pp ppf t =
  Format.fprintf ppf "(%a) %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t.values)
    Ifdb_difc.Label.pp t.label

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool
  | Ints of int array

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Ints x, Ints y -> x = y
  | (Null | Int _ | Float _ | Text _ | Bool _ | Ints _), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3
  | Ints _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | Ints x, Ints y -> Stdlib.compare x y
  | _ -> Int.compare (rank a) (rank b)

let is_null = function Null -> true | _ -> false

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Bool b -> if b then 1 else 0
  | v -> invalid_arg (Printf.sprintf "Value.to_int: %s" (match v with
      | Text s -> Printf.sprintf "text %S" s
      | Null -> "NULL"
      | _ -> "array"))

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> invalid_arg (match v with Null -> "Value.to_float: NULL" | _ -> "Value.to_float")

let to_bool = function
  | Bool b -> b
  | Int i -> i <> 0
  | v -> invalid_arg (match v with Null -> "Value.to_bool: NULL" | _ -> "Value.to_bool")

let to_text = function
  | Text s -> s
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Bool b -> if b then "t" else "f"
  | Null -> ""
  | Ints a ->
      "{" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "}"

let byte_size = function
  | Null -> 0
  | Int _ | Float _ -> 8
  | Bool _ -> 1
  | Text s -> 4 + String.length s
  | Ints a -> 4 + (4 * Array.length a)

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Text s -> Format.fprintf ppf "'%s'" s
  | Bool b -> Format.pp_print_string ppf (if b then "true" else "false")
  | Ints a ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map string_of_int (Array.to_list a)))

let to_string v = Format.asprintf "%a" pp v

let hash = Hashtbl.hash

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type unop = Not | Neg

type t =
  | Const of Value.t
  | Col of int
  | Row_label
  | Lazy_const of Value.t Lazy.t
  | Param of int
  | Binop of binop * t * t
  | Unop of unop * t
  | Is_null of t
  | Is_not_null of t
  | In_list of t * Value.t list
  | Like of t * string
  | Fn of string * t list
  | Case of (t * t) list * t

type env = {
  fn : string -> Value.t list -> Value.t;
  mutable params : Value.t array;
}

let null_env =
  { fn = (fun name _ -> failwith ("unknown function " ^ name)); params = [||] }

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* LIKE via a simple backtracking matcher; patterns are short. *)
let like_match s ~pattern =
  let ns = String.length s and np = String.length pattern in
  let rec go i j =
    if j >= np then i >= ns
    else
      match pattern.[j] with
      | '%' ->
          (* collapse consecutive %; try all suffixes *)
          if j + 1 < np && pattern.[j + 1] = '%' then go i (j + 1)
          else
            let rec try_from k = k <= ns && (go k (j + 1) || try_from (k + 1)) in
            try_from i
      | '_' -> i < ns && go (i + 1) (j + 1)
      | c -> i < ns && s.[i] = c && go (i + 1) (j + 1)
  in
  go 0 0

let arith op name a b : Value.t =
  match (a, b) with
  | Value.Int x, Value.Int y -> Value.Int (op x y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      let fop =
        match name with
        | "+" -> ( +. )
        | "-" -> ( -. )
        | "*" -> ( *. )
        | "/" -> ( /. )
        | _ -> type_error "float %s unsupported" name
      in
      Value.Float (fop (Value.to_float a) (Value.to_float b))
  | _ -> type_error "cannot apply %s to %s and %s" name (Value.to_string a)
           (Value.to_string b)

let compare_values a b : int =
  match (a, b) with
  | Value.Text _, Value.Text _
  | Value.Bool _, Value.Bool _
  | Value.Ints _, Value.Ints _
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      Value.compare a b
  | _ ->
      type_error "cannot compare %s with %s" (Value.to_string a)
        (Value.to_string b)

let rec eval env row e : Value.t =
  match e with
  | Const v -> v
  | Col i -> Tuple.get row i
  | Row_label ->
      Value.Ints (Ifdb_difc.Label.to_ints (Tuple.label row))
  | Lazy_const v -> Lazy.force v
  | Param n ->
      let ps = env.params in
      if n >= 1 && n <= Array.length ps then ps.(n - 1)
      else type_error "unbound parameter $%d" n
  | Is_null e -> Value.Bool (Value.is_null (eval env row e))
  | Is_not_null e -> Value.Bool (not (Value.is_null (eval env row e)))
  | Unop (Not, e) -> (
      match eval env row e with
      | Value.Null -> Value.Null
      | v -> Value.Bool (not (Value.to_bool v)))
  | Unop (Neg, e) -> (
      match eval env row e with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> type_error "cannot negate %s" (Value.to_string v))
  | Binop (And, a, b) -> (
      (* Kleene: false dominates NULL *)
      match eval env row a with
      | Value.Bool false -> Value.Bool false
      | va -> (
          match eval env row b with
          | Value.Bool false -> Value.Bool false
          | vb ->
              if Value.is_null va || Value.is_null vb then Value.Null
              else Value.Bool (Value.to_bool va && Value.to_bool vb)))
  | Binop (Or, a, b) -> (
      match eval env row a with
      | Value.Bool true -> Value.Bool true
      | va -> (
          match eval env row b with
          | Value.Bool true -> Value.Bool true
          | vb ->
              if Value.is_null va || Value.is_null vb then Value.Null
              else Value.Bool (Value.to_bool va || Value.to_bool vb)))
  | Binop (op, a, b) -> (
      let va = eval env row a in
      let vb = eval env row b in
      if Value.is_null va || Value.is_null vb then Value.Null
      else
        match op with
        | Add -> arith ( + ) "+" va vb
        | Sub -> arith ( - ) "-" va vb
        | Mul -> arith ( * ) "*" va vb
        | Div -> (
            match (va, vb) with
            | Value.Int _, Value.Int 0 -> type_error "division by zero"
            | Value.Int x, Value.Int y -> Value.Int (x / y)
            | _ -> Value.Float (Value.to_float va /. Value.to_float vb))
        | Mod -> (
            match (va, vb) with
            | Value.Int _, Value.Int 0 -> type_error "modulo by zero"
            | Value.Int x, Value.Int y -> Value.Int (x mod y)
            | _ -> type_error "MOD requires integers")
        | Eq -> Value.Bool (compare_values va vb = 0)
        | Neq -> Value.Bool (compare_values va vb <> 0)
        | Lt -> Value.Bool (compare_values va vb < 0)
        | Le -> Value.Bool (compare_values va vb <= 0)
        | Gt -> Value.Bool (compare_values va vb > 0)
        | Ge -> Value.Bool (compare_values va vb >= 0)
        | Concat -> Value.Text (Value.to_text va ^ Value.to_text vb)
        | And | Or -> assert false)
  | In_list (e, vs) -> (
      match eval env row e with
      | Value.Null -> Value.Null
      | v -> Value.Bool (List.exists (fun w -> Value.compare v w = 0) vs))
  | Like (e, pattern) -> (
      match eval env row e with
      | Value.Null -> Value.Null
      | v -> Value.Bool (like_match (Value.to_text v) ~pattern))
  | Fn (name, args) ->
      let vargs = List.map (eval env row) args in
      env.fn name vargs
  | Case (branches, default) ->
      let rec pick = function
        | [] -> eval env row default
        | (cond, v) :: rest -> (
            match eval env row cond with
            | Value.Bool true -> eval env row v
            | _ -> pick rest)
      in
      pick branches

let eval_pred env row e =
  match eval env row e with Value.Bool true -> true | _ -> false

let columns_used e =
  let acc = ref [] in
  let rec go = function
    | Const _ | Row_label | Lazy_const _ | Param _ -> ()
    | Col i -> acc := i :: !acc
    | Binop (_, a, b) -> go a; go b
    | Unop (_, a) | Is_null a | Is_not_null a | In_list (a, _) | Like (a, _) -> go a
    | Fn (_, args) -> List.iter go args
    | Case (branches, default) ->
        List.iter (fun (c, v) -> go c; go v) branches;
        go default
  in
  go e;
  List.sort_uniq Int.compare !acc

let rec shift_columns ~by e =
  let f = shift_columns ~by in
  match e with
  | Const v -> Const v
  | Col i -> Col (i + by)
  | Row_label -> Row_label
  | Lazy_const v -> Lazy_const v
  | Param n -> Param n
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Unop (op, a) -> Unop (op, f a)
  | Is_null a -> Is_null (f a)
  | Is_not_null a -> Is_not_null (f a)
  | In_list (a, vs) -> In_list (f a, vs)
  | Like (a, p) -> Like (f a, p)
  | Fn (name, args) -> Fn (name, List.map f args)
  | Case (branches, default) ->
      Case (List.map (fun (c, v) -> (f c, f v)) branches, f default)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR" | Concat -> "||"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Col i -> Format.fprintf ppf "$%d" i
  | Row_label -> Format.pp_print_string ppf "_label"
  | Lazy_const _ -> Format.pp_print_string ppf "<subquery>"
  | Param n -> Format.fprintf ppf "?%d" n
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Unop (Not, a) -> Format.fprintf ppf "(NOT %a)" pp a
  | Unop (Neg, a) -> Format.fprintf ppf "(-%a)" pp a
  | Is_null a -> Format.fprintf ppf "(%a IS NULL)" pp a
  | Is_not_null a -> Format.fprintf ppf "(%a IS NOT NULL)" pp a
  | In_list (a, vs) ->
      Format.fprintf ppf "(%a IN (%a))" pp a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Value.pp)
        vs
  | Like (a, p) -> Format.fprintf ppf "(%a LIKE '%s')" pp a p
  | Fn (name, args) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        args
  | Case (branches, default) ->
      Format.fprintf ppf "CASE";
      List.iter
        (fun (c, v) -> Format.fprintf ppf " WHEN %a THEN %a" pp c pp v)
        branches;
      Format.fprintf ppf " ELSE %a END" pp default

let rec map_columns f e =
  let go = map_columns f in
  match e with
  | Const v -> Const v
  | Col i -> Col (f i)
  | Row_label -> Row_label
  | Lazy_const v -> Lazy_const v
  | Param n -> Param n
  | Binop (op, a, b) -> Binop (op, go a, go b)
  | Unop (op, a) -> Unop (op, go a)
  | Is_null a -> Is_null (go a)
  | Is_not_null a -> Is_not_null (go a)
  | In_list (a, vs) -> In_list (go a, vs)
  | Like (a, p) -> Like (go a, p)
  | Fn (name, args) -> Fn (name, List.map go args)
  | Case (branches, default) ->
      Case (List.map (fun (c, v) -> (go c, go v)) branches, go default)

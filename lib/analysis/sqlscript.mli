(** Splitting lint input into checkable units.

    A lint script is a sequence of semicolon-terminated SQL statements
    interleaved with one-line [\meta] commands (principal switching,
    tag management — interpreted by the driver, not here) and [--]
    comments.  A comment of the form

    {[ -- lint: expect doomed-write, fk-leak ]}

    attaches expected diagnostic codes to the {e next} statement — or,
    when it trails a statement on the same line, to {e that} statement.
    [expect-trace] / [expect-stmt] variants scope the codes to one lint
    mode; they are stored with a ["trace:"] / ["stmt:"] prefix the
    driver strips.  [/* … */] block comments are skipped (they cannot
    carry annotations). *)

type kind =
  | Meta of string * string list  (** [\name arg…] driver command *)
  | Stmt  (** SQL text to parse, analyze and (optionally) execute *)

type item = {
  it_line : int;  (** 1-based line where the unit starts *)
  it_text : string;  (** raw text (SQL sans trailing [;]) *)
  it_kind : kind;
  mutable it_expects : string list;
      (** diagnostic codes from [-- lint: expect] annotations *)
}

val split_script : string -> item list
(** Split script text.  Semicolons inside ['…'] string literals do not
    terminate statements; blank and comment-only runs produce no
    items. *)

val bind_directive : string -> string option
(** The argument of the first [-- lint: bind V1,V2,…] line comment, if
    any: the script's default parameter bindings, so a checked-in
    parameterized template lints as the statement it would execute as.
    Callers with explicit bindings override it. *)

val extract_ml_sql : string -> (int * string) list
(** Scan OCaml source text and return [(line, contents)] for every
    string literal (["…"], [{|…|}] and [{id|…|id}] forms, OCaml
    comments skipped) that {!looks_like_sql}.  Each contents may hold
    several statements — feed it back through {!split_script}. *)

val looks_like_sql : string -> bool
(** Does the text start with a SQL keyword the engine knows? *)

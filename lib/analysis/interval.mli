(** The label-interval abstract domain.

    An interval [\[lo, hi\]] abstracts the set of labels a plan node's
    output rows may carry: [lo] is the {e must-flow lower bound} (every
    concrete row label is a superset of it — tags provably on every
    row) and [hi] is the {e may-flow upper bound} (every concrete row
    label flows to it; [Top] when nothing is known).  A base-table scan
    under destination label [d] starts from the table's live label
    partitions: [lo] is their intersection, [hi] their union capped by
    [d] (the Label Confinement Rule guarantees visible rows flow to
    [d]).  [Bottom] is the empty set of rows — a scan provably
    returning nothing.

    Soundness caveat, deliberate: with {e compound} tags, a tag can be
    covered by two different compounds, so intersecting two valid upper
    bounds ({!meet}, {!cap}) does not always yield a valid upper bound
    under compound-aware flow.  The analyzer therefore never derives an
    [Error]-severity diagnostic from interval arithmetic alone — hard
    verdicts (doomed writes, vacuous scans) re-check against the exact
    partition sets with {!Ifdb_difc.Authority.flows} — and intervals
    serve as propagation facts, planner pruning input and diagnostics
    context.  For compound-free labels the algebra is exact. *)

module Label = Ifdb_difc.Label

type bound = Finite of Label.t | Top

type t = Bottom | Range of { lo : Label.t; hi : bound }

val top : t
(** [\[{}, Top\]]: any label at all. *)

val bottom : t
val exact : Label.t -> t
(** [\[l, l\]]: every row carries exactly [l]. *)

val range : lo:Label.t -> hi:bound -> t

val is_bottom : t -> bool

val exact_label : t -> Label.t option
(** [Some l] iff the interval pins the label to exactly [l]. *)

val join : t -> t -> t
(** Least upper bound: rows coming from {e either} side (UNION). *)

val meet : t -> t -> t
(** Rows satisfying {e both} constraints (e.g. a scan further
    restricted by a [_label = {…}] equality).  See the compound-tag
    caveat above. *)

val combine : t -> t -> t
(** Row-label union of a pair of rows, one from each side — the join
    node's label semantics (result label = union of input labels). *)

val map : (Label.t -> Label.t) -> t -> t
(** Apply a monotone label transform to both bounds — the
    declassifying-view boundary ([strip]). *)

val cap : t -> Label.t -> t
(** [cap t d] meets the upper bound with [Finite d] — the confinement
    cap at a scan under destination label [d]. *)

val intern : Ifdb_difc.Label_store.t -> t -> t
(** Replace both bounds by their canonical interned representatives so
    downstream comparisons hit the store's pointer fast paths. *)

val normalize : flows:(src:Label.t -> dst:Label.t -> bool) -> t -> t
(** Collapse an infeasible range (finite [hi] with [not (lo flows hi)])
    to {!bottom}. *)

val equal : t -> t -> bool
val pp : names:(Label.t -> string) -> Format.formatter -> t -> unit
val to_string : names:(Label.t -> string) -> t -> string

module A = Ifdb_sql.Ast
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Authority = Ifdb_difc.Authority
module Label_store = Ifdb_difc.Label_store
module Value = Ifdb_rel.Value
module Schema = Ifdb_rel.Schema
module Catalog = Ifdb_engine.Catalog
module Heap = Ifdb_storage.Heap

type ctx = {
  an_catalog : Catalog.t;
  an_auth : Authority.t;
  an_store : Label_store.t;
  an_principal : Principal.t;
  an_label : Label.t;
  an_write_labels : Label.t list;
}

let norm = String.lowercase_ascii
let lbl ctx l = Authority.label_to_string ctx.an_auth l

let tag_str ctx t =
  match Authority.tag_name ctx.an_auth t with
  | "" -> Format.asprintf "%a" Tag.pp t
  | n -> n
  | exception Authority.Unknown _ -> Format.asprintf "%a" Tag.pp t

let principal_str ctx =
  match Authority.principal_name ctx.an_auth ctx.an_principal with
  | "" -> Format.asprintf "%a" Principal.pp ctx.an_principal
  | n -> n
  | exception Authority.Unknown _ ->
      Format.asprintf "%a" Principal.pp ctx.an_principal

let flows ctx ~src ~dst =
  Label_store.flows_id ctx.an_store
    ~src:(Label_store.intern ctx.an_store src)
    ~dst:(Label_store.intern ctx.an_store dst)

(* ------------------------------------------------------------------ *)
(* Live label partitions                                               *)
(* ------------------------------------------------------------------ *)

(* The analyzer's view of a table: its live label partitions (from the
   heap's per-label version counts, the same source PR 1's scan prewarm
   uses), split by whether each partition flows to the destination
   label.  Counts include versions awaiting vacuum, so they are a
   conservative superset of what any snapshot sees; [p_unknown] counts
   live versions whose label was never interned (tuples built outside
   the statement path), about which nothing can be claimed. *)
type parts = {
  p_visible : (Label.t * int) list;
  p_hidden : (Label.t * int) list;
  p_unknown : int;
}

let partitions ctx (tbl : Catalog.table) ~dst =
  let dst_id = Label_store.intern ctx.an_store dst in
  let vis = ref [] and hid = ref [] and unknown = ref 0 in
  Heap.iter_label_counts tbl.Catalog.tbl_heap (fun lid count ->
      if count > 0 then
        if lid < 0 then unknown := !unknown + count
        else begin
          let l = Label_store.label_of ctx.an_store lid in
          if Label_store.flows_id ctx.an_store ~src:lid ~dst:dst_id then
            vis := (l, count) :: !vis
          else hid := (l, count) :: !hid
        end);
  (* heap iteration order is not deterministic; diagnostics are *)
  let sort = List.sort (fun (a, _) (b, _) -> Label.compare a b) in
  { p_visible = sort !vis; p_hidden = sort !hid; p_unknown = !unknown }

let total xs = List.fold_left (fun acc (_, n) -> acc + n) 0 xs

let labels_str ctx xs =
  String.concat ", " (List.map (fun (l, _) -> lbl ctx l) xs)

let table_name (tbl : Catalog.table) =
  tbl.Catalog.tbl_schema.Schema.table_name

let interval_of_parts parts ~dst =
  if parts.p_unknown > 0 then
    Interval.range ~lo:Label.empty ~hi:(Interval.Finite dst)
  else
    match parts.p_visible with
    | [] -> Interval.bottom
    | (l0, _) :: rest ->
        let lo = List.fold_left (fun acc (l, _) -> Label.inter acc l) l0 rest in
        let hi = List.fold_left (fun acc (l, _) -> Label.union acc l) l0 rest in
        Interval.range ~lo ~hi:(Interval.Finite hi)

(* The declassifying-view label transform, mirroring the executor's
   [strip]: drop tags covered by the declassify label, then apply the
   relabeling view's (from, to) replacements. *)
let strip ctx declassified relabel l =
  let after =
    List.filter
      (fun tag -> not (Authority.covers ctx.an_auth declassified tag))
      (Label.to_list l)
  in
  let replaced =
    List.concat_map
      (fun tag ->
        match List.assoc_opt tag relabel with
        | Some to_tag -> [ to_tag ]
        | None -> [ tag ])
      after
  in
  let additions =
    List.filter_map
      (fun (from_tag, to_tag) ->
        if Label.mem from_tag l then Some to_tag else None)
      relabel
  in
  Label.of_list (replaced @ additions)

(* ------------------------------------------------------------------ *)
(* AST utilities                                                       *)
(* ------------------------------------------------------------------ *)

(* One-pass expression walk firing [lits] on every label literal and
   [subs] on every nested SELECT. *)
let rec walk_expr (e : A.expr) ~lits ~subs =
  match e with
  | A.E_label_lit names -> lits names
  | A.E_scalar_subquery s | A.E_exists s -> subs s
  | A.E_const _ | A.E_col _ | A.E_count_star | A.E_param _ -> ()
  | A.E_binop (_, a, b) ->
      walk_expr a ~lits ~subs;
      walk_expr b ~lits ~subs
  | A.E_not a
  | A.E_neg a
  | A.E_is_null a
  | A.E_is_not_null a
  | A.E_like (a, _)
  | A.E_count_distinct a ->
      walk_expr a ~lits ~subs
  | A.E_in (a, xs) ->
      walk_expr a ~lits ~subs;
      List.iter (fun x -> walk_expr x ~lits ~subs) xs
  | A.E_fn (_, args) -> List.iter (fun x -> walk_expr x ~lits ~subs) args
  | A.E_case (arms, els) ->
      List.iter
        (fun (c, v) ->
          walk_expr c ~lits ~subs;
          walk_expr v ~lits ~subs)
        arms;
      Option.iter (fun e -> walk_expr e ~lits ~subs) els

let resolve_tag ctx name =
  match Authority.find_tag ctx.an_auth name with
  | t -> Ok t
  | exception Authority.Unknown _ ->
      Error (Diag.error Diag.Name_error "unknown tag %S" name)

let resolve_label ctx names =
  let rec go acc = function
    | [] -> Ok (Label.of_list acc)
    | n :: rest -> (
        match resolve_tag ctx n with
        | Ok t -> go (t :: acc) rest
        | Error d -> Error d)
  in
  go [] names

let rec conjuncts (e : A.expr) =
  match e with
  | A.E_binop (A.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let is_label_col = function
  | A.E_col (_, c) -> norm c = "_label"
  | _ -> false

(* Split a WHERE clause into [_label = {…}] equalities and everything
   else. *)
let split_label_eqs (where : A.expr option) =
  match where with
  | None -> ([], [])
  | Some e ->
      List.partition_map
        (fun c ->
          match c with
          | A.E_binop (A.Eq, l, A.E_label_lit names) when is_label_col l ->
              Either.Left names
          | A.E_binop (A.Eq, A.E_label_lit names, r) when is_label_col r ->
              Either.Left names
          | c -> Either.Right c)
        (conjuncts e)

(* ------------------------------------------------------------------ *)
(* SELECT analysis                                                     *)
(* ------------------------------------------------------------------ *)

type sel_info = { si_interval : Interval.t; si_vacuous : bool }

let rec analyze_select_acc ctx ~extra ~seen ~add (sel : A.select) : sel_info =
  let walk e = walk_expr_diags ctx ~extra ~seen ~add e in
  List.iter
    (function A.Sel_expr (e, _) -> walk e | A.Sel_star | A.Sel_table_star _ -> ())
    sel.A.items;
  Option.iter walk sel.A.where;
  Option.iter walk sel.A.having;
  List.iter walk sel.A.group_by;
  List.iter (fun (e, _) -> walk e) sel.A.order_by;
  let from_info =
    match sel.A.from with
    | None -> { si_interval = Interval.exact Label.empty; si_vacuous = false }
    | Some r -> analyze_ref ctx ~extra ~seen ~add r
  in
  let dst = Label.union ctx.an_label extra in
  (* [_label = {…}] equality against a single base-table scan *)
  let scans_base_table =
    match sel.A.from with
    | Some (A.T_table (name, _)) ->
        Catalog.find_table ctx.an_catalog name <> None
    | _ -> false
  in
  let lits, _others = split_label_eqs sel.A.where in
  let lit_labels =
    List.filter_map
      (fun names -> Result.to_option (resolve_label ctx names))
      lits
  in
  let vac_lit, itv =
    match lit_labels with
    | [] -> (false, from_info.si_interval)
    | l :: rest when not (List.for_all (Label.equal l) rest) ->
        add
          (Diag.warning Diag.Vacuous_query
             "contradictory _label equalities (%s) can match no row"
             (String.concat " vs "
                (List.map (lbl ctx) (List.sort_uniq Label.compare lit_labels))));
        (true, Interval.bottom)
    | l :: _ when scans_base_table ->
        if not (flows ctx ~src:l ~dst) then begin
          add
            (Diag.warning Diag.Vacuous_query
               "the _label = %s filter is invisible under the session label \
                %s: the predicate can match no stored row"
               (lbl ctx l) (lbl ctx dst));
          (true, Interval.bottom)
        end
        else (false, Interval.meet from_info.si_interval (Interval.exact l))
    | _ -> (false, from_info.si_interval)
  in
  let vacuous = from_info.si_vacuous || vac_lit in
  let members =
    List.map (fun (_k, m) -> analyze_select_acc ctx ~extra ~seen ~add m)
      sel.A.unions
  in
  {
    si_interval =
      List.fold_left (fun acc i -> Interval.join acc i.si_interval) itv members;
    si_vacuous = List.fold_left (fun acc i -> acc && i.si_vacuous) vacuous members;
  }

and walk_expr_diags ctx ~extra ~seen ~add e =
  walk_expr e
    ~lits:(fun names ->
      List.iter
        (fun n ->
          match resolve_tag ctx n with Ok _ -> () | Error d -> add d)
        names)
    ~subs:(fun s -> ignore (analyze_select_acc ctx ~extra ~seen ~add s))

and analyze_ref ctx ~extra ~seen ~add (r : A.table_ref) : sel_info =
  match r with
  | A.T_table (name, _) -> analyze_relation ctx ~extra ~seen ~add name
  | A.T_join (l, kind, rr, cond) ->
      let li = analyze_ref ctx ~extra ~seen ~add l in
      let ri = analyze_ref ctx ~extra ~seen ~add rr in
      Option.iter (walk_expr_diags ctx ~extra ~seen ~add) cond;
      let vac =
        match kind with
        | A.Inner -> li.si_vacuous || ri.si_vacuous
        | A.Left -> li.si_vacuous
      in
      {
        si_interval = Interval.combine li.si_interval ri.si_interval;
        si_vacuous = vac;
      }
  | A.T_subquery (s, _) -> analyze_select_acc ctx ~extra ~seen ~add s

and analyze_relation ctx ~extra ~seen ~add name : sel_info =
  match Catalog.find_table ctx.an_catalog name with
  | Some tbl ->
      let dst = Label.union ctx.an_label extra in
      let parts = partitions ctx tbl ~dst in
      let vacuous =
        parts.p_visible = [] && parts.p_unknown = 0 && parts.p_hidden <> []
      in
      if vacuous then
        add
          (Diag.warning Diag.Vacuous_query
             "scan of %s is vacuous: all %d stored row(s) carry labels (%s) \
              that cannot flow to the session label %s"
             (table_name tbl) (total parts.p_hidden)
             (labels_str ctx parts.p_hidden)
             (lbl ctx dst));
      { si_interval = interval_of_parts parts ~dst; si_vacuous = vacuous }
  | None -> (
      match Catalog.find_view ctx.an_catalog name with
      | Some vw ->
          if List.mem (norm name) seen then
            { si_interval = Interval.top; si_vacuous = false }
          else begin
            let relabel = vw.Catalog.vw_relabel in
            let from_tags = Label.of_list (List.map fst relabel) in
            let extra' =
              Label.union extra (Label.union vw.Catalog.vw_declassify from_tags)
            in
            let info =
              analyze_select_acc ctx ~extra:extra' ~seen:(norm name :: seen)
                ~add vw.Catalog.vw_query
            in
            {
              info with
              si_interval =
                Interval.map
                  (strip ctx vw.Catalog.vw_declassify relabel)
                  info.si_interval;
            }
          end
      | None ->
          add (Diag.error Diag.Name_error "unknown relation %s" name);
          { si_interval = Interval.top; si_vacuous = false })

(* ------------------------------------------------------------------ *)
(* Write analysis (UPDATE / DELETE)                                    *)
(* ------------------------------------------------------------------ *)

(* Decide the Write-Rule fate of an UPDATE/DELETE.  [Error] only when
   the failure is guaranteed: the statement's matched rows provably
   include a row the session cannot write (no restricting predicate
   beyond the [_label] equality, and the offending partitions are
   live).  Anything data- or predicate-dependent is a [Warning]. *)
let analyze_write_target ctx ~add ~table ~where ~verb : Catalog.table option =
  match Catalog.find_table ctx.an_catalog table with
  | None ->
      (match Catalog.find_view ctx.an_catalog table with
      | Some _ ->
          add
            (Diag.error Diag.Name_error
               "%s is a view; %s targets a base table" table verb)
      | None -> add (Diag.error Diag.Name_error "unknown relation %s" table));
      None
  | Some tbl ->
      let ls = ctx.an_label in
      let tname = table_name tbl in
      let parts = partitions ctx tbl ~dst:ls in
      let lits, others = split_label_eqs where in
      let lit_labels =
        List.filter_map
          (fun names -> Result.to_option (resolve_label ctx names))
          lits
      in
      (match lit_labels with
      | l :: rest when not (List.for_all (Label.equal l) rest) ->
          add
            (Diag.warning Diag.Vacuous_query
               "contradictory _label equalities in %s of %s can match no row"
               verb tname)
      | l :: _ ->
          if not (flows ctx ~src:l ~dst:ls) then
            add
              (Diag.warning Diag.Vacuous_query
                 "%s of %s is restricted to _label = %s, which is invisible \
                  under the session label %s: it matches nothing"
                 verb tname (lbl ctx l) (lbl ctx ls))
          else if not (Label.equal l ls) then begin
            let count =
              List.fold_left
                (fun acc (pl, n) -> if Label.equal pl l then acc + n else acc)
                0 parts.p_visible
            in
            if count > 0 && others = [] then
              add
                (Diag.error Diag.Doomed_write
                   "%s of %s is doomed: it matches %d visible row(s) labeled \
                    %s, but the session label is %s and the Write Rule only \
                    allows writing exact-label rows"
                   verb tname count (lbl ctx l) (lbl ctx ls))
            else
              add
                (Diag.warning Diag.Doomed_write
                   "%s of %s can only match rows labeled %s, which the \
                    session (label %s) cannot write under the Write Rule"
                   verb tname (lbl ctx l) (lbl ctx ls))
          end
      | [] ->
          if parts.p_unknown > 0 then ()
          else if parts.p_visible = [] then begin
            if parts.p_hidden <> [] then
              add
                (Diag.warning Diag.Vacuous_query
                   "%s of %s matches nothing: all %d stored row(s) carry \
                    labels (%s) invisible to the session label %s"
                   verb tname (total parts.p_hidden)
                   (labels_str ctx parts.p_hidden)
                   (lbl ctx ls))
          end
          else if
            not (List.exists (fun (l, _) -> Label.equal l ls) parts.p_visible)
          then begin
            if others = [] then
              add
                (Diag.error Diag.Doomed_write
                   "%s of %s is doomed: every visible row carries a label \
                    (%s) different from the session label %s, and the Write \
                    Rule forbids writing any of them"
                   verb tname
                   (labels_str ctx parts.p_visible)
                   (lbl ctx ls))
            else
              add
                (Diag.warning Diag.Doomed_write
                   "%s of %s cannot modify any row: no visible row of %s \
                    carries the session label %s"
                   verb tname tname (lbl ctx ls))
          end
          else begin
            let wrong =
              List.filter
                (fun (l, _) -> not (Label.equal l ls))
                parts.p_visible
            in
            if wrong <> [] then
              if others = [] then
                add
                  (Diag.error Diag.Doomed_write
                     "%s of %s without a restricting predicate touches every \
                      visible row, including %d row(s) labeled %s that the \
                      session (label %s) cannot write"
                     verb tname (total wrong) (labels_str ctx wrong)
                     (lbl ctx ls))
              else
                add
                  (Diag.warning Diag.Doomed_write
                     "%s of %s may touch rows labeled %s that the session \
                      (label %s) cannot write under the Write Rule"
                     verb tname (labels_str ctx wrong) (lbl ctx ls))
          end);
      Some tbl

(* ------------------------------------------------------------------ *)
(* INSERT analysis                                                     *)
(* ------------------------------------------------------------------ *)

let analyze_insert ctx ~add ~i_table ~i_columns ~i_rows ~i_select
    ~i_declassifying =
  List.iter
    (List.iter (fun e -> walk_expr_diags ctx ~extra:Label.empty ~seen:[] ~add e))
    i_rows;
  (* resolve the target: a base table, or an updatable view (which adds
     its declassify label to the stored tuples) *)
  let target =
    match Catalog.find_table ctx.an_catalog i_table with
    | Some tbl -> Some (tbl, Label.empty, false)
    | None -> (
        match Catalog.find_view ctx.an_catalog i_table with
        | Some vw ->
            if vw.Catalog.vw_relabel <> [] then begin
              add
                (Diag.error Diag.Name_error
                   "INSERT through relabeling view %s is not supported" i_table);
              None
            end
            else begin
              match vw.Catalog.vw_query with
              | {
               A.from = Some (A.T_table (base, _));
               where = None;
               group_by = [];
               having = None;
               distinct = false;
               unions = [];
               _;
              } -> (
                  match Catalog.find_table ctx.an_catalog base with
                  | Some tbl -> Some (tbl, vw.Catalog.vw_declassify, true)
                  | None ->
                      add
                        (Diag.error Diag.Name_error
                           "view %s references unknown table %s" i_table base);
                      None)
              | _ ->
                  add
                    (Diag.error Diag.Name_error "view %s is not updatable"
                       i_table);
                  None
            end
        | None ->
            add (Diag.error Diag.Name_error "unknown relation %s" i_table);
            None)
  in
  let declared_tags =
    List.filter_map
      (fun name ->
        match resolve_tag ctx name with
        | Error d ->
            add d;
            None
        | Ok t ->
            if not (Authority.has_authority ctx.an_auth ctx.an_principal t)
            then
              add
                (Diag.error Diag.Overbroad_declassify
                   "INSERT ... DECLASSIFYING (%s): principal %s lacks \
                    authority for the tag (no ownership, compound, or live \
                    delegation chain reaches it)"
                   name (principal_str ctx));
            Some t)
      i_declassifying
  in
  let declared = Label.of_list declared_tags in
  Option.iter
    (fun sel ->
      let info = analyze_select_acc ctx ~extra:Label.empty ~seen:[] ~add sel in
      if info.si_vacuous then
        add
          (Diag.warning Diag.Vacuous_query
             "INSERT ... SELECT into %s inserts nothing: the source query is \
              vacuous under the session label %s"
             i_table (lbl ctx ctx.an_label)))
    i_select;
  match target with
  | None -> ()
  | Some (tbl, view_label, via_view) ->
      let schema = tbl.Catalog.tbl_schema in
      if not via_view then
        Option.iter
          (List.iter (fun c ->
               if Schema.col_index_opt schema c = None then
                 add
                   (Diag.error Diag.Name_error
                      "column %s of %s does not exist" c i_table)))
          i_columns;
      let lw = Label.union ctx.an_label view_label in
      (* Foreign Key Rule feasibility: value-independent — if no live
         referenced partition's label difference from the write label is
         covered by the DECLASSIFYING clause, no inserted row naming a
         non-NULL key can ever satisfy the FK. *)
      let row_expr_for row col =
        match i_columns with
        | Some cs ->
            let rec idx i = function
              | [] -> None
              | c :: rest -> if norm c = norm col then Some i else idx (i + 1) rest
            in
            (match idx 0 cs with
            | None -> Some (A.E_const Value.Null) (* column omitted: NULL *)
            | Some i -> List.nth_opt row i)
        | None -> (
            match Schema.col_index_opt schema col with
            | None -> None
            | Some i -> List.nth_opt row i)
      in
      let classify_row fk row =
        let exprs = List.map (row_expr_for row) fk.Schema.fk_cols in
        if
          List.exists
            (function
              | Some (A.E_const v) -> Value.is_null v
              | _ -> false)
            exprs
        then `Null
        else if
          List.for_all
            (function Some (A.E_const _) -> true | _ -> false)
            exprs
        then `Definite
        else `May
      in
      if not via_view then
        List.iter
          (fun fk ->
            match Catalog.find_table ctx.an_catalog fk.Schema.fk_ref_table with
            | None -> ()
            | Some rtbl ->
                let rparts = partitions ctx rtbl ~dst:Label.empty in
                let all = rparts.p_visible @ rparts.p_hidden in
                if all <> [] && rparts.p_unknown = 0 then begin
                  let feasible =
                    List.exists
                      (fun (lb, _) ->
                        Label.subset (Label.symm_diff lw lb) declared)
                      all
                  in
                  if not feasible then begin
                    let engagement =
                      if i_select <> None then `May
                      else
                        List.fold_left
                          (fun acc row ->
                            match (acc, classify_row fk row) with
                            | `Definite, _ | _, `Definite -> `Definite
                            | `May, _ | _, `May -> `May
                            | `Null, `Null -> `Null)
                          `Null i_rows
                    in
                    let all_sorted =
                      List.sort_uniq Label.compare (List.map fst all)
                    in
                    let labels =
                      String.concat ", " (List.map (lbl ctx) all_sorted)
                    in
                    match engagement with
                    | `Null -> ()
                    | `Definite ->
                        add
                          (Diag.error Diag.Fk_leak
                             "INSERT into %s labeled %s cannot satisfy \
                              foreign key %s: every live %s row carries a \
                              label (%s) whose difference from the write \
                              label is not covered by DECLASSIFYING (%s) — \
                              the Foreign Key Rule forbids the reference"
                             (table_name tbl) (lbl ctx lw) fk.Schema.fk_name
                             fk.Schema.fk_ref_table labels (lbl ctx declared))
                    | `May ->
                        add
                          (Diag.warning Diag.Fk_leak
                             "INSERT into %s labeled %s may violate foreign \
                              key %s: live %s rows carry labels (%s) whose \
                              difference from the write label is not covered \
                              by DECLASSIFYING (%s)"
                             (table_name tbl) (lbl ctx lw) fk.Schema.fk_name
                             fk.Schema.fk_ref_table labels (lbl ctx declared))
                  end
                end)
          schema.Schema.foreign_keys

(* ------------------------------------------------------------------ *)
(* DDL and transaction analysis                                        *)
(* ------------------------------------------------------------------ *)

let base_tables_of_select ctx sel =
  let acc = ref [] in
  let rec go_sel seen (s : A.select) =
    Option.iter (go_ref seen) s.A.from;
    List.iter (fun (_, m) -> go_sel seen m) s.A.unions
  and go_ref seen = function
    | A.T_table (name, _) -> (
        match Catalog.find_table ctx.an_catalog name with
        | Some tbl -> if not (List.memq tbl !acc) then acc := tbl :: !acc
        | None -> (
            match Catalog.find_view ctx.an_catalog name with
            | Some vw when not (List.mem (norm name) seen) ->
                go_sel (norm name :: seen) vw.Catalog.vw_query
            | Some _ | None -> ()))
    | A.T_join (l, _, r, _) ->
        go_ref seen l;
        go_ref seen r
    | A.T_subquery (s, _) -> go_sel seen s
  in
  go_sel [] sel;
  List.rev !acc

let analyze_create_view ctx ~add ~cv_name ~cv_query ~cv_declassifying
    ~cv_materialized =
  (* problems inside the view body are warnings: CREATE VIEW itself
     succeeds even if the query cannot run yet *)
  let soften d =
    add { d with Diag.d_severity = Diag.Warning }
  in
  let declared =
    Label.of_list
      (List.filter_map
         (fun n -> Result.to_option (resolve_tag ctx n))
         cv_declassifying)
  in
  ignore
    (analyze_select_acc ctx ~extra:declared ~seen:[] ~add:soften cv_query);
  (* a MATERIALIZED view outside the delta compiler's supported shapes
     silently degrades to per-read recomputation: worth a warning at
     definition time, with the compiler's own reason *)
  (if cv_materialized then
     let pctx =
       { Ifdb_engine.Planner.pc_catalog = ctx.an_catalog;
         pc_auth = ctx.an_auth; pc_exec = None }
     in
     match Ifdb_engine.Planner.plan_select pctx ~extra:declared cv_query with
     | plan, _columns -> (
         match Ifdb_engine.Ivm.plan_supported plan with
         | Ok () -> ()
         | Error reason ->
             add
               (Diag.warning Diag.Recompute_fallback
                  "materialized view %s cannot be maintained incrementally \
                   (%s): every read will recompute it from the base tables"
                  cv_name reason))
     | exception _ ->
         (* body does not even plan here (unknown names are reported
            above; subqueries need an executor) — nothing to add *)
         ());
  if cv_declassifying <> [] then begin
    if not (Label.is_empty ctx.an_label) then
      add
        (Diag.error Diag.Overbroad_declassify
           "CREATE VIEW %s WITH DECLASSIFYING requires an empty session \
            label (the view definition is public state); the session label \
            is %s"
           cv_name
           (lbl ctx ctx.an_label));
    List.iter
      (fun name ->
        match resolve_tag ctx name with
        | Error d -> add d
        | Ok t ->
            if not (Authority.has_authority ctx.an_auth ctx.an_principal t)
            then
              add
                (Diag.error Diag.Overbroad_declassify
                   "view %s declassifies tag %s, but principal %s lacks \
                    authority for it (no ownership, compound, or live \
                    delegation chain reaches it)"
                   cv_name name (principal_str ctx))
            else begin
              (* authorized, but does the tag ever occur (compound-aware)
                 in the base tables' live label partitions? *)
              let tables = base_tables_of_select ctx cv_query in
              let any_rows = ref false and occurs = ref false in
              List.iter
                (fun tbl ->
                  let parts = partitions ctx tbl ~dst:Label.empty in
                  if parts.p_unknown > 0 then begin
                    any_rows := true;
                    occurs := true
                  end;
                  List.iter
                    (fun (l, _) ->
                      any_rows := true;
                      if
                        Label.exists
                          (fun m ->
                            Authority.covers ctx.an_auth (Label.singleton t) m)
                          l
                      then occurs := true)
                    (parts.p_visible @ parts.p_hidden))
                tables;
              if !any_rows && not !occurs then
                add
                  (Diag.warning Diag.Overbroad_declassify
                     "view %s declassifies tag %s, but no live row of its \
                      base table(s) carries it: the clause currently \
                      declassifies nothing"
                     cv_name name)
            end)
      cv_declassifying
  end

let analyze_create_table ctx ~add ~ct_name ~ct_constraints =
  List.iter
    (function
      | A.C_foreign_key { c_cols; c_ref_table; c_ref_cols = _ } -> (
          match Catalog.find_table ctx.an_catalog c_ref_table with
          | None ->
              add
                (Diag.error Diag.Name_error
                   "foreign key on %s references unknown table %s" ct_name
                   c_ref_table)
          | Some rtbl ->
              let parts = partitions ctx rtbl ~dst:Label.empty in
              let labeled =
                List.filter
                  (fun (l, _) -> not (Label.is_empty l))
                  (parts.p_visible @ parts.p_hidden)
              in
              if labeled <> [] then
                add
                  (Diag.warning Diag.Fk_leak
                     "foreign key %s(%s) references %s, whose rows carry \
                      label(s) %s: inserting a reference from a session \
                      under another label requires DECLASSIFYING the \
                      difference, and deleting a referenced row can be \
                      restricted by referencing rows the deleter cannot see \
                      (Foreign Key Rule)"
                     ct_name (String.concat ", " c_cols) c_ref_table
                     (labels_str ctx labeled)))
      | A.C_primary_key _ | A.C_unique _ -> ())
    ct_constraints

let analyze_commit ctx ~add =
  let ls = ctx.an_label in
  let seen = ref [] in
  List.iter
    (fun w ->
      if not (List.exists (Label.equal w) !seen) then begin
        seen := w :: !seen;
        if not (flows ctx ~src:ls ~dst:w) then begin
          let missing =
            List.filter
              (fun t -> not (Authority.covers ctx.an_auth w t))
              (Label.to_list ls)
          in
          let fixable =
            missing <> []
            && List.for_all
                 (fun t -> Authority.has_authority ctx.an_auth ctx.an_principal t)
                 missing
          in
          let mstr = String.concat ", " (List.map (tag_str ctx) missing) in
          add
            (Diag.error Diag.Commit_trap
               (if fixable then
                  "COMMIT is doomed: the commit label %s does not flow to \
                   written tuple label %s; the session holds authority for \
                   %s and could declassify them before committing"
                else
                  "COMMIT is doomed: the commit label %s does not flow to \
                   written tuple label %s, and the session lacks authority \
                   for %s — the transaction can only roll back")
               (lbl ctx ls) (lbl ctx w) mstr)
        end
      end)
    ctx.an_write_labels

let perform_tag_arg (args : A.expr list) =
  match args with
  | [ A.E_col (None, n) ] -> Some n
  | [ A.E_const (Value.Text n) ] -> Some n
  | _ -> None

let analyze_perform ctx ~add name args =
  match (norm name, perform_tag_arg args) with
  | "addsecrecy", Some n -> (
      match resolve_tag ctx n with Ok _ -> () | Error d -> add d)
  | "declassify", Some n -> (
      match resolve_tag ctx n with
      | Error d -> add d
      | Ok t ->
          if not (Authority.has_authority ctx.an_auth ctx.an_principal t) then
            add
              (Diag.error Diag.Overbroad_declassify
                 "PERFORM declassify(%s): principal %s lacks authority for \
                  the tag"
                 n (principal_str ctx)))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let rec analyze_stmt ctx (stmt : A.stmt) : Diag.t list =
  let out = ref [] in
  let add d = out := d :: !out in
  let walk e = walk_expr_diags ctx ~extra:Label.empty ~seen:[] ~add e in
  (match stmt with
  | A.S_select sel ->
      ignore (analyze_select_acc ctx ~extra:Label.empty ~seen:[] ~add sel)
  | A.S_update { u_table; u_sets; u_where } -> (
      List.iter (fun (_, e) -> walk e) u_sets;
      Option.iter walk u_where;
      match
        analyze_write_target ctx ~add ~table:u_table ~where:u_where
          ~verb:"UPDATE"
      with
      | Some tbl ->
          let schema = tbl.Catalog.tbl_schema in
          List.iter
            (fun (c, _) ->
              if Schema.col_index_opt schema c = None then
                add
                  (Diag.error Diag.Name_error
                     "column %s of %s does not exist" c u_table))
            u_sets
      | None -> ())
  | A.S_delete { d_table; d_where } ->
      Option.iter walk d_where;
      ignore
        (analyze_write_target ctx ~add ~table:d_table ~where:d_where
           ~verb:"DELETE")
  | A.S_insert { i_table; i_columns; i_rows; i_select; i_declassifying } ->
      analyze_insert ctx ~add ~i_table ~i_columns ~i_rows ~i_select
        ~i_declassifying
  | A.S_create_view { cv_name; cv_query; cv_declassifying; cv_materialized } ->
      analyze_create_view ctx ~add ~cv_name ~cv_query ~cv_declassifying
        ~cv_materialized
  | A.S_create_table { ct_name; ct_columns = _; ct_constraints } ->
      analyze_create_table ctx ~add ~ct_name ~ct_constraints
  | A.S_commit -> analyze_commit ctx ~add
  | A.S_perform (name, args) -> analyze_perform ctx ~add name args
  | A.S_explain { x_stmt; _ } ->
      (* EXPLAIN inherits the diagnostics of the statement it wraps
         (already sorted; re-sorting below is stable). *)
      List.iter add (analyze_stmt ctx x_stmt)
  | A.S_prepare { pr_stmt; _ } ->
      (* Analyze the body once, at PREPARE time.  With placeholders in
         play, value-dependent verdicts (doomed writes, vacuous scans,
         FK leaks, commit traps) hold only for *some* bindings — demote
         them to warnings so a prepared statement is not rejected for a
         binding it may never receive.  Name errors stay errors: no
         binding can repair an unknown relation or column. *)
      let param_dependent = function
        | Diag.Doomed_write | Diag.Vacuous_query | Diag.Fk_leak
        | Diag.Commit_trap ->
            true
        | Diag.Overbroad_declassify | Diag.Name_error
        | Diag.Recompute_fallback | Diag.Parse_error | Diag.Runtime_error ->
            false
      in
      let soften_params d =
        if A.has_param pr_stmt && param_dependent d.Diag.d_code then
          add { d with Diag.d_severity = Diag.Warning }
        else add d
      in
      List.iter soften_params (analyze_stmt ctx pr_stmt)
  | A.S_execute _ | A.S_deallocate _
  (* EXECUTE reuses the diagnostics stored at PREPARE time (the session
     re-analyzes when authority or catalog stamps move). *)
  | A.S_begin | A.S_rollback | A.S_create_index _ | A.S_drop _ -> ());
  let diags = List.rev !out in
  List.stable_sort
    (fun a b -> compare (not (Diag.is_error a)) (not (Diag.is_error b)))
    diags

let select_interval ctx sel =
  let add _ = () in
  let info = analyze_select_acc ctx ~extra:Label.empty ~seen:[] ~add sel in
  Interval.normalize
    ~flows:(fun ~src ~dst -> flows ctx ~src ~dst)
    (Interval.intern ctx.an_store info.si_interval)

let rec referenced_tags (stmt : A.stmt) : string list =
  let acc = ref [] in
  let push n = if not (List.mem n !acc) then acc := n :: !acc in
  let rec go_expr e = walk_expr e ~lits:(List.iter push) ~subs:go_sel
  and go_sel (s : A.select) =
    List.iter
      (function
        | A.Sel_expr (e, _) -> go_expr e
        | A.Sel_star | A.Sel_table_star _ -> ())
      s.A.items;
    Option.iter go_ref s.A.from;
    Option.iter go_expr s.A.where;
    Option.iter go_expr s.A.having;
    List.iter go_expr s.A.group_by;
    List.iter (fun (e, _) -> go_expr e) s.A.order_by;
    List.iter (fun (_, m) -> go_sel m) s.A.unions
  and go_ref = function
    | A.T_table _ -> ()
    | A.T_join (l, _, r, c) ->
        go_ref l;
        go_ref r;
        Option.iter go_expr c
    | A.T_subquery (s, _) -> go_sel s
  in
  (match stmt with
  | A.S_select s -> go_sel s
  | A.S_insert { i_rows; i_select; i_declassifying; _ } ->
      List.iter push i_declassifying;
      List.iter (List.iter go_expr) i_rows;
      Option.iter go_sel i_select
  | A.S_update { u_sets; u_where; _ } ->
      List.iter (fun (_, e) -> go_expr e) u_sets;
      Option.iter go_expr u_where
  | A.S_delete { d_where; _ } -> Option.iter go_expr d_where
  | A.S_create_view { cv_query; cv_declassifying; _ } ->
      List.iter push cv_declassifying;
      go_sel cv_query
  | A.S_perform (name, args)
    when List.mem (norm name) [ "addsecrecy"; "declassify" ] ->
      Option.iter push (perform_tag_arg args)
  | A.S_explain { x_stmt; _ } -> List.iter push (referenced_tags x_stmt)
  | A.S_prepare { pr_stmt; _ } -> List.iter push (referenced_tags pr_stmt)
  | A.S_execute { ex_args; _ } -> List.iter go_expr ex_args
  | A.S_perform _ | A.S_create_table _ | A.S_create_index _ | A.S_drop _
  | A.S_begin | A.S_commit | A.S_rollback | A.S_deallocate _ ->
      ());
  List.rev !acc

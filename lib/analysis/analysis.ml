module A = Ifdb_sql.Ast
module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Authority = Ifdb_difc.Authority
module Label_store = Ifdb_difc.Label_store
module Value = Ifdb_rel.Value
module Schema = Ifdb_rel.Schema
module Catalog = Ifdb_engine.Catalog
module Heap = Ifdb_storage.Heap

module Ts = Trace_state

type ctx = {
  an_catalog : Catalog.t;
  an_auth : Authority.t;
  an_store : Label_store.t;
  an_principal : Principal.t;
  an_label : Label.t;
  an_write_labels : Label.t list;
  an_clearance : bool;
  an_in_txn : bool;
  an_trace : Ts.t option;
}

let norm = String.lowercase_ascii
let lbl ctx l = Authority.label_to_string ctx.an_auth l

let tag_str ctx t =
  match Authority.tag_name ctx.an_auth t with
  | "" -> Format.asprintf "%a" Tag.pp t
  | n -> n
  | exception Authority.Unknown _ -> Format.asprintf "%a" Tag.pp t

let principal_str ctx =
  match Authority.principal_name ctx.an_auth ctx.an_principal with
  | "" -> Format.asprintf "%a" Principal.pp ctx.an_principal
  | n -> n
  | exception Authority.Unknown _ ->
      Format.asprintf "%a" Principal.pp ctx.an_principal

let flows ctx ~src ~dst =
  Label_store.flows_id ctx.an_store
    ~src:(Label_store.intern ctx.an_store src)
    ~dst:(Label_store.intern ctx.an_store dst)

(* ------------------------------------------------------------------ *)
(* Trace overlay: relations and authority                              *)
(* ------------------------------------------------------------------ *)

(* A fully symbolic trace (lint --trace, shell \check) layers its own
   catalog/partition/authority state over the committed one.  The
   runtime shadow trace a session keeps for an open transaction is
   deliberately NOT an overlay — the heap and authority state already
   hold the truth there; it only contributes statement indices to
   messages. *)
let sym_trace ctx =
  match ctx.an_trace with
  | Some ts when Ts.symbolic ts -> Some ts
  | Some _ | None -> None

(* The analyzer's unified relation: a committed catalog table (with a
   heap) or one the trace created symbolically (schema only). *)
type rtable = {
  rt_name : string;
  rt_schema : Schema.t;
  rt_heap : Heap.t option;
  rt_constrained : bool;
}

let schema_constrained (sch : Schema.t) =
  sch.Schema.primary_key <> [] || sch.Schema.uniques <> []
  || sch.Schema.foreign_keys <> []

let rt_of_catalog (tbl : Catalog.table) =
  let sch = tbl.Catalog.tbl_schema in
  {
    rt_name = sch.Schema.table_name;
    rt_schema = sch;
    rt_heap = Some tbl.Catalog.tbl_heap;
    rt_constrained = schema_constrained sch;
  }

let find_rtable ctx name : rtable option =
  match sym_trace ctx with
  | Some ts when Ts.dropped ts name -> None
  | Some ts -> (
      match Ts.find_table ts name with
      | Some at ->
          Some
            {
              rt_name = at.Ts.at_name;
              rt_schema = at.Ts.at_schema;
              rt_heap = None;
              rt_constrained = at.Ts.at_constrained;
            }
      | None ->
          if Ts.find_view ts name <> None then None
          else Option.map rt_of_catalog (Catalog.find_table ctx.an_catalog name)
      )
  | None -> Option.map rt_of_catalog (Catalog.find_table ctx.an_catalog name)

let find_rview ctx name : Catalog.view option =
  match sym_trace ctx with
  | Some ts when Ts.dropped ts name -> None
  | Some ts -> (
      match Ts.find_view ts name with
      | Some av ->
          Some
            {
              Catalog.vw_name = av.Ts.av_name;
              vw_query = av.Ts.av_query;
              vw_declassify = av.Ts.av_declassify;
              vw_relabel = [];
              vw_materialized = av.Ts.av_materialized;
            }
      | None ->
          if Ts.find_table ts name <> None then None
          else Catalog.find_view ctx.an_catalog name)
  | None -> Catalog.find_view ctx.an_catalog name

(* Authority through the trace's delegate/revoke overlay.  Exact: tag
   ownership and compound links are immutable once created, so
   [has_authority_hyp] answers precisely for the authority state in
   force when the analyzed statement runs. *)
let auth_has ctx tag =
  match sym_trace ctx with
  | Some ts when not (Ts.overlay_empty ts) ->
      let added, removed = Ts.overlay ts in
      Authority.has_authority_hyp ctx.an_auth ~added ~removed ctx.an_principal
        tag
  | Some _ | None -> Authority.has_authority ctx.an_auth ctx.an_principal tag

(* If an authority check fails only because of the script's own
   revocations — without the removed edges the principal would hold
   the authority — return the index of the latest causal revoke so the
   diagnostic can cite it. *)
let causal_revoke ctx tag =
  match sym_trace ctx with
  | Some ts when Ts.auth_events ts <> [] ->
      (* Reconstruct the grant set as if no revocation had happened.
         The net overlay is useless here: revoking an edge the script
         itself delegated nets it out of [added] entirely, so the
         hypothetical must be rebuilt from the delegate *events*. *)
      let added =
        List.filter_map
          (fun (ev : Ts.auth_event) ->
            if ev.Ts.ae_kind = `Delegate then
              Some (ev.Ts.ae_grantor, ev.Ts.ae_grantee, ev.Ts.ae_tag)
            else None)
          (Ts.auth_events ts)
      in
      if
        Authority.has_authority_hyp ctx.an_auth ~added ~removed:[]
          ctx.an_principal tag
      then
        List.fold_left
          (fun acc (ev : Ts.auth_event) ->
            if
              ev.Ts.ae_kind = `Revoke
              && Authority.covers ctx.an_auth
                   (Label.singleton ev.Ts.ae_tag)
                   tag
            then Some ev.Ts.ae_index
            else acc)
          None (Ts.auth_events ts)
      else None
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Live label partitions                                               *)
(* ------------------------------------------------------------------ *)

(* The analyzer's view of a table: its live label partitions (from the
   heap's per-label version counts, the same source PR 1's scan prewarm
   uses), split by whether each partition flows to the destination
   label.  Counts include versions awaiting vacuum, so they are a
   conservative superset of what any snapshot sees; [p_unknown] counts
   live versions whose label was never interned (tuples built outside
   the statement path), about which nothing can be claimed. *)
type parts = {
  p_visible : (Label.t * int) list;
  p_hidden : (Label.t * int) list;
  p_unknown : int;
  p_maybe : Label.t list;
      (* labels that *may* hold live rows (symbolic maybe-inserts and
         deleted-to-maybe states).  Each contributes 1 to [p_unknown],
         so [p_unknown = List.length p_maybe] means every unclaimed row
         still has a known candidate label. *)
}

let partitions ctx (rt : rtable) ~dst =
  let dst_id = Label_store.intern ctx.an_store dst in
  let vis = ref [] and hid = ref [] and unknown = ref 0 in
  (match rt.rt_heap with
  | None -> ()
  | Some heap ->
      Heap.iter_label_counts heap (fun lid count ->
          if count > 0 then
            if lid < 0 then unknown := !unknown + count
            else begin
              let l = Label_store.label_of ctx.an_store lid in
              if Label_store.flows_id ctx.an_store ~src:lid ~dst:dst_id then
                vis := (l, count) :: !vis
              else hid := (l, count) :: !hid
            end));
  (* heap iteration order is not deterministic; diagnostics are *)
  let sort = List.sort (fun (a, _) (b, _) -> Label.compare a b) in
  let events =
    match sym_trace ctx with
    | Some ts -> Ts.deltas ts rt.rt_name
    | None -> []
  in
  if events = [] then
    { p_visible = sort !vis; p_hidden = sort !hid; p_unknown = !unknown;
      p_maybe = [] }
  else begin
    (* Fold the script's own insert/delete events over the committed
       counts.  Per label the state is three-valued: provably non-empty
       with [n] committed-or-definite rows, or "maybe occupied". *)
    let states : (Label.t * [ `NE of int | `MB ]) list ref = ref [] in
    let get l =
      Option.map snd
        (List.find_opt (fun (l', _) -> Label.equal l l') !states)
    in
    let set l s =
      states :=
        (l, s) :: List.filter (fun (l', _) -> not (Label.equal l l')) !states
    in
    List.iter (fun (l, n) -> set l (`NE n)) (!vis @ !hid);
    List.iter
      (fun (_i, ev) ->
        match ev with
        | Ts.Ins_def l -> (
            match get l with
            | Some (`NE n) -> set l (`NE (n + 1))
            | Some `MB | None -> set l (`NE 1))
        | Ts.Ins_maybe l -> (
            match get l with Some (`NE _) -> () | Some `MB | None -> set l `MB)
        | Ts.Del l -> (
            match get l with
            | Some (`NE _) -> set l `MB
            | Some `MB | None -> ()))
      events;
    let vis' = ref [] and hid' = ref [] and unknown' = ref !unknown in
    let maybe = ref [] in
    List.iter
      (fun (l, st) ->
        match st with
        | `MB ->
            incr unknown';
            maybe := l :: !maybe
        | `NE n ->
            if
              Label_store.flows_id ctx.an_store
                ~src:(Label_store.intern ctx.an_store l)
                ~dst:dst_id
            then vis' := (l, n) :: !vis'
            else hid' := (l, n) :: !hid')
      !states;
    { p_visible = sort !vis'; p_hidden = sort !hid'; p_unknown = !unknown';
      p_maybe = List.sort Label.compare !maybe }
  end

let total xs = List.fold_left (fun acc (_, n) -> acc + n) 0 xs

let labels_str ctx xs =
  String.concat ", " (List.map (fun (l, _) -> lbl ctx l) xs)

let interval_of_parts parts ~dst =
  if parts.p_unknown > 0 then
    Interval.range ~lo:Label.empty ~hi:(Interval.Finite dst)
  else
    match parts.p_visible with
    | [] -> Interval.bottom
    | (l0, _) :: rest ->
        let lo = List.fold_left (fun acc (l, _) -> Label.inter acc l) l0 rest in
        let hi = List.fold_left (fun acc (l, _) -> Label.union acc l) l0 rest in
        Interval.range ~lo ~hi:(Interval.Finite hi)

(* The declassifying-view label transform, mirroring the executor's
   [strip]: drop tags covered by the declassify label, then apply the
   relabeling view's (from, to) replacements. *)
let strip ctx declassified relabel l =
  let after =
    List.filter
      (fun tag -> not (Authority.covers ctx.an_auth declassified tag))
      (Label.to_list l)
  in
  let replaced =
    List.concat_map
      (fun tag ->
        match List.assoc_opt tag relabel with
        | Some to_tag -> [ to_tag ]
        | None -> [ tag ])
      after
  in
  let additions =
    List.filter_map
      (fun (from_tag, to_tag) ->
        if Label.mem from_tag l then Some to_tag else None)
      relabel
  in
  Label.of_list (replaced @ additions)

(* ------------------------------------------------------------------ *)
(* AST utilities                                                       *)
(* ------------------------------------------------------------------ *)

(* One-pass expression walk firing [lits] on every label literal and
   [subs] on every nested SELECT. *)
let rec walk_expr (e : A.expr) ~lits ~subs =
  match e with
  | A.E_label_lit names -> lits names
  | A.E_scalar_subquery s | A.E_exists s -> subs s
  | A.E_const _ | A.E_col _ | A.E_count_star | A.E_param _ -> ()
  | A.E_binop (_, a, b) ->
      walk_expr a ~lits ~subs;
      walk_expr b ~lits ~subs
  | A.E_not a
  | A.E_neg a
  | A.E_is_null a
  | A.E_is_not_null a
  | A.E_like (a, _)
  | A.E_count_distinct a ->
      walk_expr a ~lits ~subs
  | A.E_in (a, xs) ->
      walk_expr a ~lits ~subs;
      List.iter (fun x -> walk_expr x ~lits ~subs) xs
  | A.E_fn (_, args) -> List.iter (fun x -> walk_expr x ~lits ~subs) args
  | A.E_case (arms, els) ->
      List.iter
        (fun (c, v) ->
          walk_expr c ~lits ~subs;
          walk_expr v ~lits ~subs)
        arms;
      Option.iter (fun e -> walk_expr e ~lits ~subs) els

let resolve_tag ctx name =
  match Authority.find_tag ctx.an_auth name with
  | t -> Ok t
  | exception Authority.Unknown _ ->
      Error (Diag.error Diag.Name_error "unknown tag %S" name)

let resolve_label ctx names =
  let rec go acc = function
    | [] -> Ok (Label.of_list acc)
    | n :: rest -> (
        match resolve_tag ctx n with
        | Ok t -> go (t :: acc) rest
        | Error d -> Error d)
  in
  go [] names

let rec conjuncts (e : A.expr) =
  match e with
  | A.E_binop (A.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let is_label_col = function
  | A.E_col (_, c) -> norm c = "_label"
  | _ -> false

(* Split a WHERE clause into [_label = {…}] equalities and everything
   else. *)
let split_label_eqs (where : A.expr option) =
  match where with
  | None -> ([], [])
  | Some e ->
      List.partition_map
        (fun c ->
          match c with
          | A.E_binop (A.Eq, l, A.E_label_lit names) when is_label_col l ->
              Either.Left names
          | A.E_binop (A.Eq, A.E_label_lit names, r) when is_label_col r ->
              Either.Left names
          | c -> Either.Right c)
        (conjuncts e)

(* ------------------------------------------------------------------ *)
(* SELECT analysis                                                     *)
(* ------------------------------------------------------------------ *)

type sel_info = { si_interval : Interval.t; si_vacuous : bool }

let rec analyze_select_acc ctx ~extra ~seen ~add (sel : A.select) : sel_info =
  let walk e = walk_expr_diags ctx ~extra ~seen ~add e in
  List.iter
    (function A.Sel_expr (e, _) -> walk e | A.Sel_star | A.Sel_table_star _ -> ())
    sel.A.items;
  Option.iter walk sel.A.where;
  Option.iter walk sel.A.having;
  List.iter walk sel.A.group_by;
  List.iter (fun (e, _) -> walk e) sel.A.order_by;
  let from_info =
    match sel.A.from with
    | None -> { si_interval = Interval.exact Label.empty; si_vacuous = false }
    | Some r -> analyze_ref ctx ~extra ~seen ~add r
  in
  let dst = Label.union ctx.an_label extra in
  (* [_label = {…}] equality against a single base-table scan *)
  let scans_base_table =
    match sel.A.from with
    | Some (A.T_table (name, _)) -> find_rtable ctx name <> None
    | _ -> false
  in
  let lits, _others = split_label_eqs sel.A.where in
  let lit_labels =
    List.filter_map
      (fun names -> Result.to_option (resolve_label ctx names))
      lits
  in
  let vac_lit, itv =
    match lit_labels with
    | [] -> (false, from_info.si_interval)
    | l :: rest when not (List.for_all (Label.equal l) rest) ->
        add
          (Diag.warning Diag.Vacuous_query
             "contradictory _label equalities (%s) can match no row"
             (String.concat " vs "
                (List.map (lbl ctx) (List.sort_uniq Label.compare lit_labels))));
        (true, Interval.bottom)
    | l :: _ when scans_base_table ->
        if not (flows ctx ~src:l ~dst) then begin
          add
            (Diag.warning Diag.Vacuous_query
               "the _label = %s filter is invisible under the session label \
                %s: the predicate can match no stored row"
               (lbl ctx l) (lbl ctx dst));
          (true, Interval.bottom)
        end
        else (false, Interval.meet from_info.si_interval (Interval.exact l))
    | _ -> (false, from_info.si_interval)
  in
  let vacuous = from_info.si_vacuous || vac_lit in
  let members =
    List.map (fun (_k, m) -> analyze_select_acc ctx ~extra ~seen ~add m)
      sel.A.unions
  in
  {
    si_interval =
      List.fold_left (fun acc i -> Interval.join acc i.si_interval) itv members;
    si_vacuous = List.fold_left (fun acc i -> acc && i.si_vacuous) vacuous members;
  }

and walk_expr_diags ctx ~extra ~seen ~add e =
  walk_expr e
    ~lits:(fun names ->
      List.iter
        (fun n ->
          match resolve_tag ctx n with Ok _ -> () | Error d -> add d)
        names)
    ~subs:(fun s -> ignore (analyze_select_acc ctx ~extra ~seen ~add s))

and analyze_ref ctx ~extra ~seen ~add (r : A.table_ref) : sel_info =
  match r with
  | A.T_table (name, _) -> analyze_relation ctx ~extra ~seen ~add name
  | A.T_join (l, kind, rr, cond) ->
      let li = analyze_ref ctx ~extra ~seen ~add l in
      let ri = analyze_ref ctx ~extra ~seen ~add rr in
      Option.iter (walk_expr_diags ctx ~extra ~seen ~add) cond;
      let vac =
        match kind with
        | A.Inner -> li.si_vacuous || ri.si_vacuous
        | A.Left -> li.si_vacuous
      in
      {
        si_interval = Interval.combine li.si_interval ri.si_interval;
        si_vacuous = vac;
      }
  | A.T_subquery (s, _) -> analyze_select_acc ctx ~extra ~seen ~add s

and analyze_relation ctx ~extra ~seen ~add name : sel_info =
  match find_rtable ctx name with
  | Some rt ->
      let dst = Label.union ctx.an_label extra in
      (match sym_trace ctx with
      | Some ts -> Ts.note_read ts ~table:rt.rt_name ~dst
      | None -> ());
      let parts = partitions ctx rt ~dst in
      let vacuous =
        parts.p_visible = [] && parts.p_unknown = 0 && parts.p_hidden <> []
      in
      if vacuous then
        add
          (Diag.warning Diag.Vacuous_query
             "scan of %s is vacuous: all %d stored row(s) carry labels (%s) \
              that cannot flow to the session label %s"
             rt.rt_name (total parts.p_hidden)
             (labels_str ctx parts.p_hidden)
             (lbl ctx dst));
      { si_interval = interval_of_parts parts ~dst; si_vacuous = vacuous }
  | None -> (
      match find_rview ctx name with
      | Some vw ->
          if List.mem (norm name) seen then
            { si_interval = Interval.top; si_vacuous = false }
          else begin
            let relabel = vw.Catalog.vw_relabel in
            let from_tags = Label.of_list (List.map fst relabel) in
            let extra' =
              Label.union extra (Label.union vw.Catalog.vw_declassify from_tags)
            in
            let info =
              analyze_select_acc ctx ~extra:extra' ~seen:(norm name :: seen)
                ~add vw.Catalog.vw_query
            in
            {
              info with
              si_interval =
                Interval.map
                  (strip ctx vw.Catalog.vw_declassify relabel)
                  info.si_interval;
            }
          end
      | None ->
          add (Diag.error Diag.Name_error "unknown relation %s" name);
          { si_interval = Interval.top; si_vacuous = false })

(* ------------------------------------------------------------------ *)
(* Write analysis (UPDATE / DELETE)                                    *)
(* ------------------------------------------------------------------ *)

(* Decide the Write-Rule fate of an UPDATE/DELETE.  [Error] only when
   the failure is guaranteed: the statement's matched rows provably
   include a row the session cannot write (no restricting predicate
   beyond the [_label] equality, and the offending partitions are
   live).  Anything data- or predicate-dependent is a [Warning]. *)
let analyze_write_target ctx ~add ~table ~where ~verb : rtable option =
  match find_rtable ctx table with
  | None ->
      (match find_rview ctx table with
      | Some _ ->
          add
            (Diag.error Diag.Name_error
               "%s is a view; %s targets a base table" table verb)
      | None -> add (Diag.error Diag.Name_error "unknown relation %s" table));
      None
  | Some rt ->
      let ls = ctx.an_label in
      let tname = rt.rt_name in
      (match sym_trace ctx with
      | Some ts -> Ts.note_read ts ~table:tname ~dst:ls
      | None -> ());
      let parts = partitions ctx rt ~dst:ls in
      let lits, others = split_label_eqs where in
      let lit_labels =
        List.filter_map
          (fun names -> Result.to_option (resolve_label ctx names))
          lits
      in
      (match lit_labels with
      | l :: rest when not (List.for_all (Label.equal l) rest) ->
          add
            (Diag.warning Diag.Vacuous_query
               "contradictory _label equalities in %s of %s can match no row"
               verb tname)
      | l :: _ ->
          if not (flows ctx ~src:l ~dst:ls) then
            add
              (Diag.warning Diag.Vacuous_query
                 "%s of %s is restricted to _label = %s, which is invisible \
                  under the session label %s: it matches nothing"
                 verb tname (lbl ctx l) (lbl ctx ls))
          else if not (Label.equal l ls) then begin
            let count =
              List.fold_left
                (fun acc (pl, n) -> if Label.equal pl l then acc + n else acc)
                0 parts.p_visible
            in
            if count > 0 && others = [] then
              add
                (Diag.error Diag.Doomed_write
                   "%s of %s is doomed: it matches %d visible row(s) labeled \
                    %s, but the session label is %s and the Write Rule only \
                    allows writing exact-label rows"
                   verb tname count (lbl ctx l) (lbl ctx ls))
            else
              add
                (Diag.warning Diag.Doomed_write
                   "%s of %s can only match rows labeled %s, which the \
                    session (label %s) cannot write under the Write Rule"
                   verb tname (lbl ctx l) (lbl ctx ls))
          end
      | [] ->
          if parts.p_unknown > 0 then begin
            (* Data-dependent under trace interpretation: rows may sit in
               partitions the analysis cannot pin down, and any of them
               under a foreign label fails the Write Rule. *)
            if sym_trace ctx <> None then
              add
                (Diag.warning Diag.Doomed_write
                   "%s of %s may touch rows whose labels the trace cannot \
                    pin down; the Write Rule rejects any row not labeled \
                    exactly %s"
                   verb tname (lbl ctx ls))
          end
          else if parts.p_visible = [] then begin
            if parts.p_hidden <> [] then
              add
                (Diag.warning Diag.Vacuous_query
                   "%s of %s matches nothing: all %d stored row(s) carry \
                    labels (%s) invisible to the session label %s"
                   verb tname (total parts.p_hidden)
                   (labels_str ctx parts.p_hidden)
                   (lbl ctx ls))
          end
          else if
            not (List.exists (fun (l, _) -> Label.equal l ls) parts.p_visible)
          then begin
            if others = [] then
              add
                (Diag.error Diag.Doomed_write
                   "%s of %s is doomed: every visible row carries a label \
                    (%s) different from the session label %s, and the Write \
                    Rule forbids writing any of them"
                   verb tname
                   (labels_str ctx parts.p_visible)
                   (lbl ctx ls))
            else
              add
                (Diag.warning Diag.Doomed_write
                   "%s of %s cannot modify any row: no visible row of %s \
                    carries the session label %s"
                   verb tname tname (lbl ctx ls))
          end
          else begin
            let wrong =
              List.filter
                (fun (l, _) -> not (Label.equal l ls))
                parts.p_visible
            in
            if wrong <> [] then
              if others = [] then
                add
                  (Diag.error Diag.Doomed_write
                     "%s of %s without a restricting predicate touches every \
                      visible row, including %d row(s) labeled %s that the \
                      session (label %s) cannot write"
                     verb tname (total wrong) (labels_str ctx wrong)
                     (lbl ctx ls))
              else
                add
                  (Diag.warning Diag.Doomed_write
                     "%s of %s may touch rows labeled %s that the session \
                      (label %s) cannot write under the Write Rule"
                     verb tname (labels_str ctx wrong) (lbl ctx ls))
          end);
      Some rt

(* ------------------------------------------------------------------ *)
(* INSERT analysis                                                     *)
(* ------------------------------------------------------------------ *)

let analyze_insert ctx ~add ~i_table ~i_columns ~i_rows ~i_select
    ~i_declassifying =
  List.iter
    (List.iter (fun e -> walk_expr_diags ctx ~extra:Label.empty ~seen:[] ~add e))
    i_rows;
  (* resolve the target: a base table, or an updatable view (which adds
     its declassify label to the stored tuples) *)
  let target =
    match find_rtable ctx i_table with
    | Some rt -> Some (rt, Label.empty, false)
    | None -> (
        match find_rview ctx i_table with
        | Some vw ->
            if vw.Catalog.vw_relabel <> [] then begin
              add
                (Diag.error Diag.Name_error
                   "INSERT through relabeling view %s is not supported" i_table);
              None
            end
            else begin
              match vw.Catalog.vw_query with
              | {
               A.from = Some (A.T_table (base, _));
               where = None;
               group_by = [];
               having = None;
               distinct = false;
               unions = [];
               _;
              } -> (
                  match find_rtable ctx base with
                  | Some rt -> Some (rt, vw.Catalog.vw_declassify, true)
                  | None ->
                      add
                        (Diag.error Diag.Name_error
                           "view %s references unknown table %s" i_table base);
                      None)
              | _ ->
                  add
                    (Diag.error Diag.Name_error "view %s is not updatable"
                       i_table);
                  None
            end
        | None ->
            add (Diag.error Diag.Name_error "unknown relation %s" i_table);
            None)
  in
  let declared_tags =
    List.filter_map
      (fun name ->
        match resolve_tag ctx name with
        | Error d ->
            add d;
            None
        | Ok t ->
            (if not (auth_has ctx t) then
               match causal_revoke ctx t with
               | Some ridx ->
                   add
                     (Diag.error Diag.Declassify_after_revoke
                        "INSERT ... DECLASSIFYING (%s): the authority backing \
                         principal %s's declassification was revoked by \
                         statement %d of this script — the insert is certain \
                         to be rejected"
                        name (principal_str ctx) ridx)
               | None ->
                   add
                     (Diag.error Diag.Overbroad_declassify
                        "INSERT ... DECLASSIFYING (%s): principal %s lacks \
                         authority for the tag (no ownership, compound, or \
                         live delegation chain reaches it)"
                        name (principal_str ctx)));
            Some t)
      i_declassifying
  in
  let declared = Label.of_list declared_tags in
  Option.iter
    (fun sel ->
      let info = analyze_select_acc ctx ~extra:Label.empty ~seen:[] ~add sel in
      if info.si_vacuous then
        add
          (Diag.warning Diag.Vacuous_query
             "INSERT ... SELECT into %s inserts nothing: the source query is \
              vacuous under the session label %s"
             i_table (lbl ctx ctx.an_label)))
    i_select;
  match target with
  | None -> ()
  | Some (rt, view_label, via_view) ->
      let schema = rt.rt_schema in
      if not via_view then
        Option.iter
          (List.iter (fun c ->
               if Schema.col_index_opt schema c = None then
                 add
                   (Diag.error Diag.Name_error
                      "column %s of %s does not exist" c i_table)))
          i_columns;
      let lw = Label.union ctx.an_label view_label in
      (* Foreign Key Rule feasibility: value-independent — if no live
         referenced partition's label difference from the write label is
         covered by the DECLASSIFYING clause, no inserted row naming a
         non-NULL key can ever satisfy the FK. *)
      let row_expr_for row col =
        match i_columns with
        | Some cs ->
            let rec idx i = function
              | [] -> None
              | c :: rest -> if norm c = norm col then Some i else idx (i + 1) rest
            in
            (match idx 0 cs with
            | None -> Some (A.E_const Value.Null) (* column omitted: NULL *)
            | Some i -> List.nth_opt row i)
        | None -> (
            match Schema.col_index_opt schema col with
            | None -> None
            | Some i -> List.nth_opt row i)
      in
      let classify_row fk row =
        let exprs = List.map (row_expr_for row) fk.Schema.fk_cols in
        if
          List.exists
            (function
              | Some (A.E_const v) -> Value.is_null v
              | _ -> false)
            exprs
        then `Null
        else if
          List.for_all
            (function Some (A.E_const _) -> true | _ -> false)
            exprs
        then `Definite
        else `May
      in
      if not via_view then
        List.iter
          (fun fk ->
            match find_rtable ctx fk.Schema.fk_ref_table with
            | None -> ()
            | Some rtbl ->
                let rparts = partitions ctx rtbl ~dst:Label.empty in
                let all = rparts.p_visible @ rparts.p_hidden in
                let candidates =
                  List.sort_uniq Label.compare
                    (List.map fst all @ rparts.p_maybe)
                in
                if
                  candidates <> []
                  && rparts.p_unknown = List.length rparts.p_maybe
                then begin
                  let feasible =
                    List.exists
                      (fun lb -> Label.subset (Label.symm_diff lw lb) declared)
                      candidates
                  in
                  if not feasible then begin
                    let engagement =
                      if i_select <> None then `May
                      else
                        List.fold_left
                          (fun acc row ->
                            match (acc, classify_row fk row) with
                            | `Definite, _ | _, `Definite -> `Definite
                            | `May, _ | _, `May -> `May
                            | `Null, `Null -> `Null)
                          `Null i_rows
                    in
                    (* maybe-only rows ([p_maybe]) still demote to a
                       warning: the referenced row may not exist at
                       all, in which case the failure is a constraint
                       violation, not a flow one *)
                    let engagement =
                      match engagement with
                      | `Definite when all = [] -> `May
                      | e -> e
                    in
                    let labels =
                      String.concat ", " (List.map (lbl ctx) candidates)
                    in
                    match engagement with
                    | `Null -> ()
                    | `Definite ->
                        add
                          (Diag.error Diag.Fk_leak
                             "INSERT into %s labeled %s cannot satisfy \
                              foreign key %s: every live %s row carries a \
                              label (%s) whose difference from the write \
                              label is not covered by DECLASSIFYING (%s) — \
                              the Foreign Key Rule forbids the reference"
                             rt.rt_name (lbl ctx lw) fk.Schema.fk_name
                             fk.Schema.fk_ref_table labels (lbl ctx declared))
                    | `May ->
                        add
                          (Diag.warning Diag.Fk_leak
                             "INSERT into %s labeled %s may violate foreign \
                              key %s: live %s rows carry labels (%s) whose \
                              difference from the write label is not covered \
                              by DECLASSIFYING (%s)"
                             rt.rt_name (lbl ctx lw) fk.Schema.fk_name
                             fk.Schema.fk_ref_table labels (lbl ctx declared))
                  end
                end)
          schema.Schema.foreign_keys

(* ------------------------------------------------------------------ *)
(* DDL and transaction analysis                                        *)
(* ------------------------------------------------------------------ *)

let base_tables_of_select ctx sel =
  let acc = ref [] in
  let rec go_sel seen (s : A.select) =
    Option.iter (go_ref seen) s.A.from;
    List.iter (fun (_, m) -> go_sel seen m) s.A.unions
  and go_ref seen = function
    | A.T_table (name, _) -> (
        match find_rtable ctx name with
        | Some rt ->
            if not (List.exists (fun r -> norm r.rt_name = norm rt.rt_name) !acc)
            then acc := rt :: !acc
        | None -> (
            match find_rview ctx name with
            | Some vw when not (List.mem (norm name) seen) ->
                go_sel (norm name :: seen) vw.Catalog.vw_query
            | Some _ | None -> ()))
    | A.T_join (l, _, r, _) ->
        go_ref seen l;
        go_ref seen r
    | A.T_subquery (s, _) -> go_sel seen s
  in
  go_sel [] sel;
  List.rev !acc

let analyze_create_view ctx ~add ~cv_name ~cv_query ~cv_declassifying
    ~cv_materialized =
  (* problems inside the view body are warnings: CREATE VIEW itself
     succeeds even if the query cannot run yet *)
  let soften d =
    add { d with Diag.d_severity = Diag.Warning }
  in
  let declared =
    Label.of_list
      (List.filter_map
         (fun n -> Result.to_option (resolve_tag ctx n))
         cv_declassifying)
  in
  ignore
    (analyze_select_acc ctx ~extra:declared ~seen:[] ~add:soften cv_query);
  (* a MATERIALIZED view outside the delta compiler's supported shapes
     silently degrades to per-read recomputation: worth a warning at
     definition time, with the compiler's own reason *)
  (if cv_materialized then
     let support cat =
       let pctx =
         { Ifdb_engine.Planner.pc_catalog = cat; pc_auth = ctx.an_auth;
           pc_exec = None }
       in
       let plan, _columns =
         Ifdb_engine.Planner.plan_select pctx ~extra:declared cv_query
       in
       Ifdb_engine.Ivm.plan_supported plan
     in
     match
       try support ctx.an_catalog
       with e when sym_trace ctx <> None -> (
         (* the script may have created the base tables symbolically,
            in which case the real catalog cannot plan the body: retry
            against a scratch catalog holding the resolvable base
            tables' schemas (views in the body still fall through) *)
         try
           let scratch =
             Catalog.create ~pool:(Catalog.pool ctx.an_catalog)
               ~labeled:false ()
           in
           List.iter
             (fun rt -> ignore (Catalog.create_table scratch rt.rt_schema))
             (base_tables_of_select ctx cv_query);
           support scratch
         with _ -> raise e)
     with
     | Ok () -> ()
     | Error reason ->
         add
           (Diag.warning Diag.Recompute_fallback
              "materialized view %s cannot be maintained incrementally \
               (%s): every read will recompute it from the base tables"
              cv_name reason)
     | exception _ ->
         (* body does not even plan here (unknown names are reported
            above; subqueries need an executor) — nothing to add *)
         ());
  if cv_declassifying <> [] then begin
    if not (Label.is_empty ctx.an_label) then
      add
        (Diag.error Diag.Overbroad_declassify
           "CREATE VIEW %s WITH DECLASSIFYING requires an empty session \
            label (the view definition is public state); the session label \
            is %s"
           cv_name
           (lbl ctx ctx.an_label));
    List.iter
      (fun name ->
        match resolve_tag ctx name with
        | Error d -> add d
        | Ok t ->
            if not (auth_has ctx t) then (
              match causal_revoke ctx t with
              | Some ridx ->
                  add
                    (Diag.error Diag.Declassify_after_revoke
                       "view %s declassifies tag %s, but the authority \
                        backing principal %s was revoked by statement %d of \
                        this script — the CREATE is certain to be rejected"
                       cv_name name (principal_str ctx) ridx)
              | None ->
                  add
                    (Diag.error Diag.Overbroad_declassify
                       "view %s declassifies tag %s, but principal %s lacks \
                        authority for it (no ownership, compound, or live \
                        delegation chain reaches it)"
                       cv_name name (principal_str ctx)))
            else begin
              (* authorized, but does the tag ever occur (compound-aware)
                 in the base tables' live label partitions? *)
              let tables = base_tables_of_select ctx cv_query in
              let any_rows = ref false and occurs = ref false in
              List.iter
                (fun tbl ->
                  let parts = partitions ctx tbl ~dst:Label.empty in
                  if parts.p_unknown > 0 then begin
                    any_rows := true;
                    occurs := true
                  end;
                  List.iter
                    (fun (l, _) ->
                      any_rows := true;
                      if
                        Label.exists
                          (fun m ->
                            Authority.covers ctx.an_auth (Label.singleton t) m)
                          l
                      then occurs := true)
                    (parts.p_visible @ parts.p_hidden))
                tables;
              if !any_rows && not !occurs then
                add
                  (Diag.warning Diag.Overbroad_declassify
                     "view %s declassifies tag %s, but no live row of its \
                      base table(s) carries it: the clause currently \
                      declassifies nothing"
                     cv_name name)
            end)
      cv_declassifying
  end

let analyze_create_table ctx ~add ~ct_name ~ct_constraints =
  List.iter
    (function
      | A.C_foreign_key { c_cols; c_ref_table; c_ref_cols = _ } -> (
          match find_rtable ctx c_ref_table with
          | None ->
              add
                (Diag.error Diag.Name_error
                   "foreign key on %s references unknown table %s" ct_name
                   c_ref_table)
          | Some rtbl ->
              let parts = partitions ctx rtbl ~dst:Label.empty in
              let labeled =
                List.filter
                  (fun (l, _) -> not (Label.is_empty l))
                  (parts.p_visible @ parts.p_hidden)
              in
              if labeled <> [] then
                add
                  (Diag.warning Diag.Fk_leak
                     "foreign key %s(%s) references %s, whose rows carry \
                      label(s) %s: inserting a reference from a session \
                      under another label requires DECLASSIFYING the \
                      difference, and deleting a referenced row can be \
                      restricted by referencing rows the deleter cannot see \
                      (Foreign Key Rule)"
                     ct_name (String.concat ", " c_cols) c_ref_table
                     (labels_str ctx labeled)))
      | A.C_primary_key _ | A.C_unique _ -> ())
    ct_constraints

let analyze_commit ctx ~add =
  let ls = ctx.an_label in
  (* with a runtime shadow trace, cite the statement that first wrote
     each offending label *)
  let origin w =
    match ctx.an_trace with
    | Some ts -> (
        match
          List.find_opt (fun (_, _, l, _) -> Label.equal l w) (Ts.txn_writes ts)
        with
        | Some (i, tblname, _, _) when i > 0 ->
            Printf.sprintf " (first written by statement %d of the \
                            transaction%s)"
              i
              (if tblname = "" then "" else ", into " ^ tblname)
        | Some _ | None -> "")
    | None -> ""
  in
  let seen = ref [] in
  List.iter
    (fun w ->
      if not (List.exists (Label.equal w) !seen) then begin
        seen := w :: !seen;
        if not (flows ctx ~src:ls ~dst:w) then begin
          let missing =
            List.filter
              (fun t -> not (Authority.covers ctx.an_auth w t))
              (Label.to_list ls)
          in
          let fixable =
            missing <> [] && List.for_all (fun t -> auth_has ctx t) missing
          in
          let mstr = String.concat ", " (List.map (tag_str ctx) missing) in
          add
            (Diag.error Diag.Commit_trap
               (if fixable then
                  "COMMIT is doomed: the commit label %s does not flow to \
                   written tuple label %s%s; the session holds authority for \
                   %s and could declassify them before committing"
                else
                  "COMMIT is doomed: the commit label %s does not flow to \
                   written tuple label %s%s, and the session lacks authority \
                   for %s — the transaction can only roll back")
               (lbl ctx ls) (lbl ctx w) (origin w) mstr)
        end
      end)
    ctx.an_write_labels

let perform_name_args (args : A.expr list) =
  let name_of = function
    | A.E_col (None, n) -> Some n
    | A.E_const (Value.Text n) -> Some n
    | _ -> None
  in
  let names = List.map name_of args in
  if List.for_all Option.is_some names then
    Some (List.filter_map Fun.id names)
  else None

let perform_tag_arg (args : A.expr list) =
  match perform_name_args args with Some [ n ] -> Some n | _ -> None

let resolve_principal ctx name =
  match Authority.find_principal ctx.an_auth name with
  | p -> Ok p
  | exception Authority.Unknown _ ->
      Error (Diag.error Diag.Name_error "unknown principal %S" name)

let analyze_perform ctx ~add name args =
  match (norm name, perform_name_args args) with
  | "addsecrecy", Some [ n ] -> (
      match resolve_tag ctx n with
      | Error d -> add d
      | Ok t ->
          (* Clearance rule (Serializable only): raising secrecy inside
             an explicit transaction requires authority for the tag. *)
          if ctx.an_clearance && ctx.an_in_txn && not (auth_has ctx t) then
            add
              (Diag.error Diag.Overbroad_declassify
                 "PERFORM addsecrecy(%s) inside a serializable transaction: \
                  the clearance rule requires principal %s to hold authority \
                  for the tag, and it does not"
                 n (principal_str ctx)))
  | "declassify", Some [ n ] -> (
      match resolve_tag ctx n with
      | Error d -> add d
      | Ok t ->
          if not (auth_has ctx t) then (
            match causal_revoke ctx t with
            | Some ridx ->
                add
                  (Diag.error Diag.Declassify_after_revoke
                     "PERFORM declassify(%s): the authority backing \
                      principal %s was revoked by statement %d of this \
                      script — the declassification is certain to be denied"
                     n (principal_str ctx) ridx)
            | None ->
                add
                  (Diag.error Diag.Overbroad_declassify
                     "PERFORM declassify(%s): principal %s lacks authority \
                      for the tag"
                     n (principal_str ctx))))
  | "delegate", Some [ tn; gn ] -> (
      match (resolve_tag ctx tn, resolve_principal ctx gn) with
      | Error d, _ | _, Error d -> add d
      | Ok t, Ok _ ->
          if not (Label.is_empty ctx.an_label) then
            add
              (Diag.error Diag.Runtime_error
                 "PERFORM delegate(%s, %s) will fail: delegation requires an \
                  empty session label (delegations are public state), but \
                  the label is %s"
                 tn gn
                 (lbl ctx ctx.an_label))
          else if not (auth_has ctx t) then (
            match causal_revoke ctx t with
            | Some ridx ->
                add
                  (Diag.error Diag.Declassify_after_revoke
                     "PERFORM delegate(%s, %s): the authority principal %s \
                      would pass on was revoked by statement %d of this \
                      script — the delegation is certain to be denied"
                     tn gn (principal_str ctx) ridx)
            | None ->
                add
                  (Diag.error Diag.Overbroad_declassify
                     "PERFORM delegate(%s, %s): principal %s lacks authority \
                      for the tag and cannot pass it on"
                     tn gn (principal_str ctx))))
  | "revoke", Some [ tn; gn ] -> (
      match (resolve_tag ctx tn, resolve_principal ctx gn) with
      | Error d, _ | _, Error d -> add d
      | Ok _, Ok _ ->
          if not (Label.is_empty ctx.an_label) then
            add
              (Diag.error Diag.Runtime_error
                 "PERFORM revoke(%s, %s) will fail: revocation requires an \
                  empty session label, but the label is %s"
                 tn gn
                 (lbl ctx ctx.an_label)))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let rec analyze_stmt ctx (stmt : A.stmt) : Diag.t list =
  let out = ref [] in
  let add d = out := d :: !out in
  let walk e = walk_expr_diags ctx ~extra:Label.empty ~seen:[] ~add e in
  (match stmt with
  | A.S_select sel ->
      ignore (analyze_select_acc ctx ~extra:Label.empty ~seen:[] ~add sel)
  | A.S_update { u_table; u_sets; u_where } -> (
      List.iter (fun (_, e) -> walk e) u_sets;
      Option.iter walk u_where;
      match
        analyze_write_target ctx ~add ~table:u_table ~where:u_where
          ~verb:"UPDATE"
      with
      | Some tbl ->
          let schema = tbl.rt_schema in
          List.iter
            (fun (c, _) ->
              if Schema.col_index_opt schema c = None then
                add
                  (Diag.error Diag.Name_error
                     "column %s of %s does not exist" c u_table))
            u_sets
      | None -> ())
  | A.S_delete { d_table; d_where } ->
      Option.iter walk d_where;
      ignore
        (analyze_write_target ctx ~add ~table:d_table ~where:d_where
           ~verb:"DELETE")
  | A.S_insert { i_table; i_columns; i_rows; i_select; i_declassifying } ->
      analyze_insert ctx ~add ~i_table ~i_columns ~i_rows ~i_select
        ~i_declassifying
  | A.S_create_view { cv_name; cv_query; cv_declassifying; cv_materialized } ->
      analyze_create_view ctx ~add ~cv_name ~cv_query ~cv_declassifying
        ~cv_materialized
  | A.S_create_table { ct_name; ct_columns = _; ct_constraints } ->
      analyze_create_table ctx ~add ~ct_name ~ct_constraints
  | A.S_commit -> analyze_commit ctx ~add
  | A.S_perform (name, args) -> analyze_perform ctx ~add name args
  | A.S_explain { x_stmt; _ } ->
      (* EXPLAIN inherits the diagnostics of the statement it wraps
         (already sorted; re-sorting below is stable). *)
      List.iter add (analyze_stmt ctx x_stmt)
  | A.S_prepare { pr_stmt; _ } ->
      (* Analyze the body once, at PREPARE time.  No blanket demotion
         for parameterized templates: every Error verdict is already
         derived from parameter-free evidence alone.  A doomed-write
         Error requires the predicate to contain nothing beyond a
         literal [_label] equality (a [$n] anywhere in the WHERE lands
         in [others] and demotes to Warning), an FK-leak Error requires
         every key expression to be a constant (a [$n] classifies the
         row as [`May]), vacuous-query is never an Error, and commit
         traps depend only on the accumulated write set.  So an Error
         on a template holds for {e every} possible binding and must
         stay an Error — [UPDATE t SET k = $1] with no WHERE is doomed
         no matter what is bound. *)
      List.iter add (analyze_stmt ctx pr_stmt)
  | A.S_execute _ | A.S_deallocate _
  (* EXECUTE reuses the diagnostics stored at PREPARE time (the session
     re-analyzes when authority or catalog stamps move). *)
  | A.S_begin | A.S_rollback | A.S_create_index _ | A.S_drop _ -> ());
  let diags = List.rev !out in
  List.stable_sort
    (fun a b -> compare (not (Diag.is_error a)) (not (Diag.is_error b)))
    diags

let select_interval ctx sel =
  let add _ = () in
  let info = analyze_select_acc ctx ~extra:Label.empty ~seen:[] ~add sel in
  Interval.normalize
    ~flows:(fun ~src ~dst -> flows ctx ~src ~dst)
    (Interval.intern ctx.an_store info.si_interval)

let rec referenced_tags (stmt : A.stmt) : string list =
  let acc = ref [] in
  let push n = if not (List.mem n !acc) then acc := n :: !acc in
  let rec go_expr e = walk_expr e ~lits:(List.iter push) ~subs:go_sel
  and go_sel (s : A.select) =
    List.iter
      (function
        | A.Sel_expr (e, _) -> go_expr e
        | A.Sel_star | A.Sel_table_star _ -> ())
      s.A.items;
    Option.iter go_ref s.A.from;
    Option.iter go_expr s.A.where;
    Option.iter go_expr s.A.having;
    List.iter go_expr s.A.group_by;
    List.iter (fun (e, _) -> go_expr e) s.A.order_by;
    List.iter (fun (_, m) -> go_sel m) s.A.unions
  and go_ref = function
    | A.T_table _ -> ()
    | A.T_join (l, _, r, c) ->
        go_ref l;
        go_ref r;
        Option.iter go_expr c
    | A.T_subquery (s, _) -> go_sel s
  in
  (match stmt with
  | A.S_select s -> go_sel s
  | A.S_insert { i_rows; i_select; i_declassifying; _ } ->
      List.iter push i_declassifying;
      List.iter (List.iter go_expr) i_rows;
      Option.iter go_sel i_select
  | A.S_update { u_sets; u_where; _ } ->
      List.iter (fun (_, e) -> go_expr e) u_sets;
      Option.iter go_expr u_where
  | A.S_delete { d_where; _ } -> Option.iter go_expr d_where
  | A.S_create_view { cv_query; cv_declassifying; _ } ->
      List.iter push cv_declassifying;
      go_sel cv_query
  | A.S_perform (name, args)
    when List.mem (norm name) [ "addsecrecy"; "declassify" ] ->
      Option.iter push (perform_tag_arg args)
  | A.S_explain { x_stmt; _ } -> List.iter push (referenced_tags x_stmt)
  | A.S_prepare { pr_stmt; _ } -> List.iter push (referenced_tags pr_stmt)
  | A.S_execute { ex_args; _ } -> List.iter go_expr ex_args
  | A.S_perform _ | A.S_create_table _ | A.S_create_index _ | A.S_drop _
  | A.S_begin | A.S_commit | A.S_rollback | A.S_deallocate _ ->
      ());
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Parameter substitution (ifdb_lint --bind, EXECUTE with constants)   *)
(* ------------------------------------------------------------------ *)

let subst_params (bindings : Value.t array) (stmt : A.stmt) : A.stmt =
  let rec ex (e : A.expr) : A.expr =
    match e with
    | A.E_param n when n >= 1 && n <= Array.length bindings ->
        A.E_const bindings.(n - 1)
    | A.E_param _ | A.E_const _ | A.E_col _ | A.E_count_star
    | A.E_label_lit _ ->
        e
    | A.E_binop (op, a, b) -> A.E_binop (op, ex a, ex b)
    | A.E_not a -> A.E_not (ex a)
    | A.E_neg a -> A.E_neg (ex a)
    | A.E_is_null a -> A.E_is_null (ex a)
    | A.E_is_not_null a -> A.E_is_not_null (ex a)
    | A.E_in (a, xs) -> A.E_in (ex a, List.map ex xs)
    | A.E_like (a, p) -> A.E_like (ex a, p)
    | A.E_fn (n, args) -> A.E_fn (n, List.map ex args)
    | A.E_count_distinct a -> A.E_count_distinct (ex a)
    | A.E_case (arms, els) ->
        A.E_case (List.map (fun (c, v) -> (ex c, ex v)) arms, Option.map ex els)
    | A.E_scalar_subquery s -> A.E_scalar_subquery (sel s)
    | A.E_exists s -> A.E_exists (sel s)
  and sel (s : A.select) : A.select =
    {
      s with
      A.items =
        List.map
          (function
            | A.Sel_expr (e, a) -> A.Sel_expr (ex e, a)
            | (A.Sel_star | A.Sel_table_star _) as it -> it)
          s.A.items;
      from = Option.map rf s.A.from;
      where = Option.map ex s.A.where;
      group_by = List.map ex s.A.group_by;
      having = Option.map ex s.A.having;
      order_by = List.map (fun (e, d) -> (ex e, d)) s.A.order_by;
      unions = List.map (fun (k, m) -> (k, sel m)) s.A.unions;
    }
  and rf (r : A.table_ref) : A.table_ref =
    match r with
    | A.T_table _ -> r
    | A.T_join (l, k, rr, c) -> A.T_join (rf l, k, rf rr, Option.map ex c)
    | A.T_subquery (s, a) -> A.T_subquery (sel s, a)
  and st (stmt : A.stmt) : A.stmt =
    match stmt with
    | A.S_select s -> A.S_select (sel s)
    | A.S_insert { i_table; i_columns; i_rows; i_select; i_declassifying } ->
        A.S_insert
          {
            i_table;
            i_columns;
            i_rows = List.map (List.map ex) i_rows;
            i_select = Option.map sel i_select;
            i_declassifying;
          }
    | A.S_update { u_table; u_sets; u_where } ->
        A.S_update
          {
            u_table;
            u_sets = List.map (fun (c, e) -> (c, ex e)) u_sets;
            u_where = Option.map ex u_where;
          }
    | A.S_delete { d_table; d_where } ->
        A.S_delete { d_table; d_where = Option.map ex d_where }
    | A.S_perform (n, args) -> A.S_perform (n, List.map ex args)
    | A.S_explain { x_analyze; x_stmt } ->
        A.S_explain { x_analyze; x_stmt = st x_stmt }
    | A.S_prepare { pr_name; pr_stmt } ->
        A.S_prepare { pr_name; pr_stmt = st pr_stmt }
    | A.S_execute { ex_name; ex_args } ->
        A.S_execute { ex_name; ex_args = List.map ex ex_args }
    | A.S_create_view _ | A.S_create_table _ | A.S_create_index _
    | A.S_drop _ | A.S_begin | A.S_commit | A.S_rollback
    | A.S_deallocate _ ->
        stmt
  in
  st stmt

(* ------------------------------------------------------------------ *)
(* Trace-level abstract interpretation                                 *)
(* ------------------------------------------------------------------ *)

(* The per-statement context under the trace's current symbolic state.
   [an_write_labels] is emptied: the open transaction's write set lives
   in the trace and COMMIT is handled by the driver, not by
   [analyze_commit]. *)
let trace_ctx ctx ts =
  {
    ctx with
    an_principal = Ts.principal ts;
    an_label = Ts.label ts;
    an_in_txn = Ts.in_open_txn ts;
    an_trace = Some ts;
    an_write_labels = [];
  }

(* Total version of the executor's CREATE TABLE schema derivation. *)
let schema_of_create_ast ~ct_name ~ct_columns ~ct_constraints :
    Schema.t option =
  let columns =
    List.map (fun (c : A.column_def) -> (c.A.cd_name, c.A.cd_type)) ct_columns
  in
  let col_pk =
    List.filter_map
      (fun (c : A.column_def) ->
        if c.A.cd_primary_key then Some c.A.cd_name else None)
      ct_columns
  in
  let table_pks =
    List.filter_map
      (function A.C_primary_key cols -> Some cols | _ -> None)
      ct_constraints
  in
  match (col_pk, table_pks) with
  | _ :: _, _ :: _ | _, _ :: _ :: _ -> None
  | _ -> (
      let primary_key =
        match (col_pk, table_pks) with
        | pk, [] -> pk
        | [], [ pk ] -> pk
        | _ -> assert false
      in
      let nullable =
        List.filter_map
          (fun (c : A.column_def) ->
            if
              c.A.cd_not_null || c.A.cd_primary_key
              || List.mem c.A.cd_name primary_key
            then None
            else Some c.A.cd_name)
          ct_columns
      in
      let uniques =
        List.filter_map
          (fun (c : A.column_def) ->
            if c.A.cd_unique then
              Some
                (Printf.sprintf "%s_%s_key" ct_name c.A.cd_name,
                 [ c.A.cd_name ])
            else None)
          ct_columns
        @ List.filter_map
            (function
              | A.C_unique cols ->
                  Some
                    ( Printf.sprintf "%s_%s_key" ct_name
                        (String.concat "_" cols),
                      cols )
              | _ -> None)
            ct_constraints
      in
      let foreign_keys =
        List.mapi
          (fun i -> function
            | A.C_foreign_key { c_cols; c_ref_table; c_ref_cols } ->
                Some
                  {
                    Schema.fk_name = Printf.sprintf "%s_fkey_%d" ct_name i;
                    fk_cols = c_cols;
                    fk_ref_table = c_ref_table;
                    fk_ref_cols = c_ref_cols;
                  }
            | A.C_primary_key _ | A.C_unique _ -> None)
          ct_constraints
        |> List.filter_map Fun.id
      in
      match
        Schema.make ~name:ct_name ~columns ~nullable ~primary_key ~uniques
          ~foreign_keys ()
      with
      | sch -> Some sch
      | exception _ -> None)

(* Is an INSERT certain to add at least one row (so its partition event
   is [Ins_def])?  Requires literal VALUES rows in schema order that
   pass the static row checks, against an unconstrained table, not
   through a view. *)
let definite_insert rt ~i_columns ~i_rows ~i_select ~via_view =
  (not via_view) && i_select = None && i_columns = None
  && (not rt.rt_constrained)
  && i_rows <> []
  && List.for_all
       (fun row ->
         List.for_all (function A.E_const _ -> true | _ -> false) row
         && List.length row = Array.length rt.rt_schema.Schema.columns
         &&
         match
           Schema.check_values rt.rt_schema
             (Array.of_list
                (List.map
                   (function A.E_const v -> v | _ -> assert false)
                   row))
         with
         | Ok () -> true
         | Error _ -> false)
       i_rows

(* State effects of a statement that is not certain to fail, applied
   after its diagnostics.  BEGIN/COMMIT/ROLLBACK/EXECUTE are handled by
   the driver itself. *)
let apply_stmt_effects ctx ts idx (stmt : A.stmt) : unit =
  let ectx = trace_ctx ctx ts in
  match stmt with
  | A.S_insert { i_table; i_columns; i_rows; i_select; i_declassifying = _ }
    -> (
      let target =
        match find_rtable ectx i_table with
        | Some rt -> Some (rt, Label.empty, false)
        | None -> (
            match find_rview ectx i_table with
            | Some vw when vw.Catalog.vw_relabel = [] -> (
                match vw.Catalog.vw_query with
                | {
                 A.from = Some (A.T_table (base, _));
                 where = None;
                 group_by = [];
                 having = None;
                 distinct = false;
                 unions = [];
                 _;
                } ->
                    Option.map
                      (fun rt -> (rt, vw.Catalog.vw_declassify, true))
                      (find_rtable ectx base)
                | _ -> None)
            | Some _ | None -> None)
      in
      match target with
      | None -> ()
      | Some (rt, view_label, via_view) ->
          let lw = Label.union (Ts.label ts) view_label in
          let definite =
            definite_insert rt ~i_columns ~i_rows ~i_select ~via_view
          in
          Ts.add_delta ts rt.rt_name ~index:idx
            (if definite then Ts.Ins_def lw else Ts.Ins_maybe lw);
          if Ts.in_open_txn ts then
            Ts.record_txn_write ts ~index:idx ~table:rt.rt_name ~label:lw
              ~definite)
  | A.S_update { u_table; _ } ->
      if Ts.in_open_txn ts then
        Option.iter
          (fun rt ->
            Ts.record_txn_write ts ~index:idx ~table:rt.rt_name
              ~label:(Ts.label ts) ~definite:false)
          (find_rtable ectx u_table)
  | A.S_delete { d_table; _ } -> (
      match find_rtable ectx d_table with
      | Some rt ->
          Ts.add_delta ts rt.rt_name ~index:idx (Ts.Del (Ts.label ts));
          if Ts.in_open_txn ts then
            Ts.record_txn_write ts ~index:idx ~table:rt.rt_name
              ~label:(Ts.label ts) ~definite:false
      | None -> ())
  | A.S_create_table { ct_name; ct_columns; ct_constraints } -> (
      match schema_of_create_ast ~ct_name ~ct_columns ~ct_constraints with
      | Some sch ->
          Ts.define_table ts
            {
              Ts.at_name = ct_name;
              at_schema = sch;
              at_constrained = schema_constrained sch;
            };
          Ts.note_stamp_event ts ~index:idx
      | None -> ())
  | A.S_create_view { cv_name; cv_query; cv_declassifying; cv_materialized }
    ->
      let declassify =
        Label.of_list
          (List.filter_map
             (fun n -> Result.to_option (resolve_tag ectx n))
             cv_declassifying)
      in
      Ts.define_view ts
        {
          Ts.av_name = cv_name;
          av_query = cv_query;
          av_declassify = declassify;
          av_materialized = cv_materialized;
        };
      Ts.note_stamp_event ts ~index:idx
  | A.S_create_index _ -> Ts.note_stamp_event ts ~index:idx
  | A.S_drop (_, name) ->
      Ts.drop ts name;
      Ts.note_stamp_event ts ~index:idx
  | A.S_perform (name, args) -> (
      match (norm name, perform_name_args args) with
      | "addsecrecy", Some [ n ] -> (
          match Authority.find_tag ctx.an_auth n with
          | t -> Ts.set_label ts (Label.add t (Ts.label ts))
          | exception Authority.Unknown _ -> ())
      | "declassify", Some [ n ] -> (
          match Authority.find_tag ctx.an_auth n with
          | t -> Ts.set_label ts (Label.remove t (Ts.label ts))
          | exception Authority.Unknown _ -> ())
      | "delegate", Some [ tn; gn ] -> (
          match
            (Authority.find_tag ctx.an_auth tn,
             Authority.find_principal ctx.an_auth gn)
          with
          | t, g ->
              Ts.delegate_edge ts ~grantor:(Ts.principal ts) ~grantee:g ~tag:t
                ~index:idx
          | exception Authority.Unknown _ -> ())
      | "revoke", Some [ tn; gn ] -> (
          match
            (Authority.find_tag ctx.an_auth tn,
             Authority.find_principal ctx.an_auth gn)
          with
          | t, g ->
              Ts.revoke_edge ts ~grantor:(Ts.principal ts) ~grantee:g ~tag:t
                ~index:idx
          | exception Authority.Unknown _ -> ())
      | _ -> ())
  | A.S_prepare { pr_name; pr_stmt } ->
      Ts.define_prepared ts ~name:pr_name ~stmt:pr_stmt ~index:idx
  | A.S_deallocate (Some name) -> Ts.remove_prepared ts name
  | A.S_deallocate None -> Ts.clear_prepared ts
  | A.S_select _ | A.S_explain _ | A.S_begin | A.S_commit | A.S_rollback
  | A.S_execute _ ->
      ()

(* COMMIT of the symbolically tracked transaction: the cross-statement
   commit-label rule.  An [Error] needs a definite write under a label
   the commit label provably does not flow to. *)
let analyze_trace_commit ctx ts ~add : [ `Doomed | `Maybe | `Clean ] =
  let ectx = trace_ctx ctx ts in
  let ls = Ts.label ts in
  (* strongest record per written label *)
  let by_label =
    List.fold_left
      (fun acc (widx, wtbl, w, definite) ->
        match List.find_opt (fun (l, _, _, _) -> Label.equal l w) acc with
        | Some (_, _, _, d0) when d0 || not definite -> acc
        | Some _ ->
            (w, widx, wtbl, definite)
            :: List.filter (fun (l, _, _, _) -> not (Label.equal l w)) acc
        | None -> (w, widx, wtbl, definite) :: acc)
      [] (Ts.txn_writes ts)
  in
  let result = ref `Clean in
  List.iter
    (fun (w, widx, wtbl, definite) ->
      if not (flows ectx ~src:ls ~dst:w) then begin
        let missing =
          List.filter
            (fun t -> not (Authority.covers ctx.an_auth w t))
            (Label.to_list ls)
        in
        let fixable =
          missing <> [] && List.for_all (fun t -> auth_has ectx t) missing
        in
        let mstr = String.concat ", " (List.map (tag_str ectx) missing) in
        let origin =
          if widx > 0 then
            Printf.sprintf " (written by statement %d%s)" widx
              (if wtbl = "" then "" else " into " ^ wtbl)
          else ""
        in
        if definite then begin
          result := `Doomed;
          add
            (Diag.error Diag.Txn_commit_trap
               (if fixable then
                  "COMMIT is doomed: the commit label %s does not flow to \
                   tuple label %s%s; the session holds authority for %s and \
                   could declassify them before committing"
                else
                  "COMMIT is doomed: the commit label %s does not flow to \
                   tuple label %s%s, and the session lacks authority for %s \
                   — the transaction can only roll back")
               (lbl ectx ls) (lbl ectx w) origin mstr)
        end
        else begin
          if !result = `Clean then result := `Maybe;
          add
            (Diag.warning Diag.Txn_commit_trap
               "COMMIT may be rejected: the commit label %s does not flow to \
                tuple label %s possibly written%s"
               (lbl ectx ls) (lbl ectx w) origin)
        end
      end)
    (List.rev by_label);
  !result

let diag_sort diags =
  List.stable_sort
    (fun a b -> compare (not (Diag.is_error a)) (not (Diag.is_error b)))
    diags

let analyze_trace_stmt ctx ts (stmt : A.stmt) : Diag.t list =
  let idx = Ts.next_index ts in
  let out = ref [] in
  let add d = out := d :: !out in
  let ectx () = trace_ctx ctx ts in
  (match stmt with
  | (A.S_commit | A.S_rollback) when Ts.broken ts <> None ->
      let bidx = Option.get (Ts.broken ts) in
      add
        (Diag.error Diag.Runtime_error
           "will fail: the guaranteed failure at statement %d already \
            aborted this transaction, so there is no open transaction to %s"
           bidx
           (match stmt with A.S_commit -> "COMMIT" | _ -> "ROLLBACK"));
      Ts.close_txn ts ~outcome:`Abort
  | A.S_begin when Ts.broken ts <> None ->
      (* the broken transaction is already gone at runtime; this BEGIN
         opens a fresh one *)
      Ts.close_txn ts ~outcome:`Abort;
      Ts.begin_txn ts ~index:idx ()
  | _ ->
      (match Ts.broken ts with
      | Some bidx ->
          add
            (Diag.warning Diag.Unreachable_stmt
               "statement is unreachable as part of the transaction: the \
                guaranteed failure at statement %d aborts it first, so this \
                statement runs in its own implicit transaction"
               bidx)
      | None -> ());
      (match stmt with
      | A.S_begin ->
          if Ts.txn ts <> None then begin
            add
              (Diag.error Diag.Runtime_error
                 "will fail: already inside a transaction — and the failure \
                  aborts the open transaction's work");
            Ts.mark_broken ts ~index:idx
          end
          else Ts.begin_txn ts ~index:idx ()
      | A.S_commit -> (
          match Ts.txn ts with
          | None ->
              add
                (Diag.error Diag.Runtime_error
                   "will fail: COMMIT outside a transaction")
          | Some _ ->
              let outcome = analyze_trace_commit ctx ts ~add in
              Ts.close_txn ts
                ~outcome:
                  (match outcome with
                  | `Doomed -> `Abort
                  | `Maybe -> `Maybe
                  | `Clean -> `Commit))
      | A.S_rollback -> (
          match Ts.txn ts with
          | None ->
              add
                (Diag.error Diag.Runtime_error
                   "will fail: ROLLBACK outside a transaction")
          | Some _ -> Ts.close_txn ts ~outcome:`Abort)
      | A.S_prepare { pr_name; pr_stmt } -> (
          if Ts.find_prepared ts pr_name <> None then
            add
              (Diag.error Diag.Runtime_error
                 "will fail: prepared statement %s already exists" pr_name)
          else
            match pr_stmt with
            | A.S_prepare _ | A.S_execute _ | A.S_deallocate _ ->
                add
                  (Diag.error Diag.Runtime_error
                     "will fail: cannot PREPARE a PREPARE, EXECUTE or \
                      DEALLOCATE")
            | _ -> List.iter add (analyze_stmt (ectx ()) stmt))
      | A.S_execute { ex_name; ex_args } -> (
          match Ts.find_prepared ts ex_name with
          | None ->
              add
                (Diag.error Diag.Name_error
                   "prepared statement %s does not exist" ex_name)
          | Some p ->
              Ts.note_execute ts ~name:ex_name ~index:idx;
              let nparams = A.max_param p.Ts.pp_stmt in
              if List.length ex_args <> nparams then
                add
                  (Diag.error Diag.Runtime_error
                     "will fail: prepared statement %s expects %d \
                      parameter(s), got %d"
                     ex_name nparams (List.length ex_args))
              else begin
                let const_args =
                  List.filter_map
                    (function A.E_const v -> Some v | _ -> None)
                    ex_args
                in
                (* with all-constant arguments the template analyzes as
                   the fully bound statement — cross-statement precision
                   per-statement linting cannot have *)
                let inner =
                  if List.length const_args = nparams then
                    subst_params (Array.of_list const_args) p.Ts.pp_stmt
                  else p.Ts.pp_stmt
                in
                let diags = analyze_stmt (ectx ()) inner in
                List.iter add diags;
                if not (List.exists Diag.is_error diags) then
                  apply_stmt_effects ctx ts idx inner
              end)
      | A.S_deallocate (Some name) ->
          if Ts.find_prepared ts name = None then
            add
              (Diag.error Diag.Runtime_error
                 "will fail: prepared statement %s does not exist" name)
      | A.S_deallocate None -> ()
      | A.S_create_table { ct_name; _ } ->
          let e = ectx () in
          if find_rtable e ct_name <> None || find_rview e ct_name <> None
          then
            add
              (Diag.error Diag.Name_error "relation %s already exists"
                 ct_name)
          else List.iter add (analyze_stmt e stmt)
      | A.S_create_view { cv_name; _ } ->
          let e = ectx () in
          if find_rtable e cv_name <> None || find_rview e cv_name <> None
          then
            add
              (Diag.error Diag.Name_error "relation %s already exists"
                 cv_name)
          else List.iter add (analyze_stmt e stmt)
      | A.S_create_index { ci_table; _ } ->
          let e = ectx () in
          if find_rtable e ci_table = None then
            add
              (Diag.error Diag.Name_error
                 "CREATE INDEX on unknown table %s" ci_table)
      | A.S_drop (kind, name) -> (
          let e = ectx () in
          match kind with
          | `Table ->
              if find_rtable e name = None then
                add (Diag.error Diag.Name_error "no such table: %s" name)
          | `View ->
              if find_rview e name = None then
                add (Diag.error Diag.Name_error "no such view: %s" name)
          | `Index -> (* index names are not tracked *) ())
      | A.S_select _ | A.S_insert _ | A.S_update _ | A.S_delete _
      | A.S_perform _ | A.S_explain _ ->
          List.iter add (analyze_stmt (ectx ()) stmt));
      let so_far = List.rev !out in
      let fatal =
        match stmt with
        | A.S_prepare _ ->
            (* Error verdicts on the template body predict the EXECUTE,
               not the PREPARE: PREPARE itself only fails on the
               duplicate-name / nested-prepare checks above (both
               [Runtime_error]).  The template must still be defined so
               a later EXECUTE resolves. *)
            List.exists
              (fun (d : Diag.t) ->
                Diag.is_error d && d.Diag.d_code = Diag.Runtime_error)
              so_far
        | _ -> List.exists Diag.is_error so_far
      in
      if fatal then begin
        if Ts.in_open_txn ts then Ts.mark_broken ts ~index:idx
      end
      else apply_stmt_effects ctx ts idx stmt);
  diag_sort (List.rev !out)

(* Meta commands (\principal, \newtag, \addsecrecy, …) consume a
   statement index too, so diagnostics can cite them uniformly.  The
   authority-changing ones share the PERFORM analysis and effects. *)
let trace_meta ctx ts ~name ~args : Diag.t list =
  let idx = Ts.next_index ts in
  let out = ref [] in
  let add d = out := d :: !out in
  let run_perform pname pargs =
    let stmt =
      A.S_perform
        (pname, List.map (fun a -> A.E_const (Value.Text a)) pargs)
    in
    let diags = analyze_stmt (trace_ctx ctx ts) stmt in
    List.iter add diags;
    if not (List.exists Diag.is_error diags) then
      apply_stmt_effects ctx ts idx stmt
  in
  (match (norm name, args) with
  | "principal", [ pname ] -> (
      match Authority.find_principal ctx.an_auth pname with
      | p -> Ts.switch_principal ts p
      | exception Authority.Unknown _ ->
          add (Diag.error Diag.Name_error "unknown principal %S" pname))
  | "newtag", [ tname ] -> (
      (* the lint driver mints the tag for real before mirroring; in a
         fully symbolic \check an unknown tag cannot be created *)
      match Authority.find_tag ctx.an_auth tname with
      | _ -> Ts.note_stamp_event ts ~index:idx
      | exception Authority.Unknown _ ->
          add
            (Diag.error Diag.Name_error
               "tag %S does not exist (tags cannot be minted symbolically)"
               tname))
  | "addsecrecy", [ t ] -> run_perform "addsecrecy" [ t ]
  | "declassify", [ t ] -> run_perform "declassify" [ t ]
  | "delegate", [ t; g ] -> run_perform "delegate" [ t; g ]
  | "revoke", [ t; g ] -> run_perform "revoke" [ t; g ]
  | _ -> ());
  diag_sort (List.rev !out)

let trace_begin ctx : Ts.t =
  let ts =
    Ts.create ~symbolic:true ~principal:ctx.an_principal ~label:ctx.an_label
      ()
  in
  (* seed an explicit transaction already open in the live session
     (shell \check mid-transaction): its accumulated write labels
     become index-0 definite writes *)
  if ctx.an_in_txn then
    Ts.begin_txn ts ~index:0
      ~writes:(List.map (fun l -> (0, "", l, true)) ctx.an_write_labels)
      ();
  ts

(* Whole-script passes that only make sense once the end of the script
   is known. *)
let trace_finish ctx ts : (int * Diag.t list) list =
  let ectx = trace_ctx ctx ts in
  let acc = ref [] in
  let addi idx d = acc := (idx, d) :: !acc in
  (* dead-write: an insert under a non-empty label no later statement
     can read and no principal can ever declassify *)
  let reads = Ts.reads ts in
  let added, removed = Ts.overlay ts in
  let principals = Authority.all_principals ctx.an_auth in
  let escapes l =
    List.exists
      (fun p ->
        Label.for_all
          (fun t -> Authority.has_authority_hyp ctx.an_auth ~added ~removed p t)
          l)
      principals
  in
  List.iter
    (fun (idx, table, l, _definite) ->
      if not (Label.is_empty l) then begin
        let read_later =
          List.exists
            (fun (r : Ts.read_rec) ->
              r.Ts.rd_index > idx
              && r.Ts.rd_table = norm table
              && flows ectx ~src:l ~dst:r.Ts.rd_dst)
            reads
        in
        if (not read_later) && not (escapes l) then
          addi idx
            (Diag.warning Diag.Dead_write
               "rows written to %s under label %s are dead: no later \
                statement of the script reads them, and no principal in the \
                final authority graph holds authority for every tag of the \
                label, so the information can never be declassified"
               table (lbl ectx l))
      end)
    (Ts.insert_events ts);
  (* stale-prepare: a catalog/authority stamp event strictly between
     PREPARE and its first EXECUTE forces re-analysis at EXECUTE time,
     so the prepare-time plan and diagnostics are never used *)
  let stamps = Ts.stamp_events ts in
  List.iter
    (fun (pname, (p : Ts.prep)) ->
      match p.Ts.pp_first_exec with
      | Some e -> (
          match List.filter (fun i -> i > p.Ts.pp_index && i < e) stamps with
          | [] -> ()
          | i :: _ ->
              addi p.Ts.pp_index
                (Diag.warning Diag.Stale_prepare
                   "PREPARE %s is stale before first use: the \
                    catalog/authority change at statement %d invalidates \
                    the prepare-time plan before the first EXECUTE at \
                    statement %d, so preparation buys nothing"
                   pname i e))
      | None -> ())
    (Ts.prepared ts);
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !acc) in
  List.fold_left
    (fun groups (i, d) ->
      match groups with
      | (j, ds) :: rest when j = i -> (j, d :: ds) :: rest
      | _ -> (i, [ d ]) :: groups)
    [] sorted
  |> List.map (fun (i, ds) -> (i, List.rev ds))
  |> List.rev

(** The static label-flow analyzer (prepare-time Query-by-Label lint).

    Runs over the SQL AST, the catalog (schemas, views, live label
    partitions via {!Ifdb_storage.Heap.iter_label_counts}), and the
    authority state — {e without executing anything} — and produces
    {!Diag.t} diagnostics:

    - {b doomed writes}: UPDATE/DELETE whose target labels can never
      equal the session label under the Write Rule;
    - {b vacuous queries}: scans or [_label = {…}] predicates
      restricted to partitions that cannot flow to the session label;
    - {b over-broad declassification}: [DECLASSIFYING] clauses the
      acting principal lacks authority for (including via the
      delegation graph), or that declassify tags absent from the base
      tables' label partitions;
    - {b commit-label traps}: a COMMIT whose write-set labels make the
      commit-label rule unsatisfiable for the current session label;
    - {b FK leak patterns}: foreign keys whose referenced rows sit
      under labels the referencing side cannot bridge.

    Precision contract: [Error]-severity diagnostics are decided
    against the {e exact} live partition sets and authority state, not
    the interval domain, so a clean verdict is never produced for a
    statement that must fail, and an [Error] means the statement
    cannot succeed under the current committed data (partition counts
    include versions awaiting vacuum, so "current data" is read
    conservatively).  The interval facts ({!select_interval}) feed
    propagation, diagnostics context and the planner's invisible-scan
    pruning. *)

module A := Ifdb_sql.Ast
module Label := Ifdb_difc.Label

type ctx = {
  an_catalog : Ifdb_engine.Catalog.t;
  an_auth : Ifdb_difc.Authority.t;
  an_store : Ifdb_difc.Label_store.t;
  an_principal : Ifdb_difc.Principal.t;
  an_label : Label.t;  (** the session label the statement would run under *)
  an_write_labels : Label.t list;
      (** labels already in the open transaction's write set (for
          COMMIT analysis); empty outside a transaction *)
}

val analyze_stmt : ctx -> A.stmt -> Diag.t list
(** Diagnostics for one statement, errors first.  Never raises on
    malformed input — unknown names come back as [Name_error]
    diagnostics. *)

val select_interval : ctx -> A.select -> Interval.t
(** The label interval inferred for the SELECT's output rows. *)

val referenced_tags : A.stmt -> string list
(** Every tag name the statement mentions ([{…}] label literals,
    [DECLASSIFYING] clauses, [PERFORM addsecrecy/declassify]
    arguments), deduplicated — the lint driver uses this to
    pre-create tags when linting scripts against a fresh database. *)

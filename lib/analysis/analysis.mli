(** The static label-flow analyzer (prepare-time Query-by-Label lint).

    Runs over the SQL AST, the catalog (schemas, views, live label
    partitions via {!Ifdb_storage.Heap.iter_label_counts}), and the
    authority state — {e without executing anything} — and produces
    {!Diag.t} diagnostics:

    - {b doomed writes}: UPDATE/DELETE whose target labels can never
      equal the session label under the Write Rule;
    - {b vacuous queries}: scans or [_label = {…}] predicates
      restricted to partitions that cannot flow to the session label;
    - {b over-broad declassification}: [DECLASSIFYING] clauses the
      acting principal lacks authority for (including via the
      delegation graph), or that declassify tags absent from the base
      tables' label partitions;
    - {b commit-label traps}: a COMMIT whose write-set labels make the
      commit-label rule unsatisfiable for the current session label;
    - {b FK leak patterns}: foreign keys whose referenced rows sit
      under labels the referencing side cannot bridge.

    Precision contract: [Error]-severity diagnostics are decided
    against the {e exact} live partition sets and authority state, not
    the interval domain, so a clean verdict is never produced for a
    statement that must fail, and an [Error] means the statement
    cannot succeed under the current committed data (partition counts
    include versions awaiting vacuum, so "current data" is read
    conservatively).  The interval facts ({!select_interval}) feed
    propagation, diagnostics context and the planner's invisible-scan
    pruning. *)

module A := Ifdb_sql.Ast
module Label := Ifdb_difc.Label

type ctx = {
  an_catalog : Ifdb_engine.Catalog.t;
  an_auth : Ifdb_difc.Authority.t;
  an_store : Ifdb_difc.Label_store.t;
  an_principal : Ifdb_difc.Principal.t;
  an_label : Label.t;  (** the session label the statement would run under *)
  an_write_labels : Label.t list;
      (** labels already in the open transaction's write set (for
          COMMIT analysis); empty outside a transaction *)
  an_clearance : bool;
      (** the clearance rule is active (serializable isolation):
          [addsecrecy] inside an explicit transaction requires
          authority for the tag *)
  an_in_txn : bool;
      (** an explicit transaction is open at analysis time *)
  an_trace : Trace_state.t option;
      (** trace-level state.  A {e symbolic} trace (lint [--trace],
          shell [\check]) overlays the catalog, label partitions and
          authority graph with the script's own effects; a
          non-symbolic trace is the thin shadow a live session keeps
          for its open transaction, used only to attribute COMMIT
          diagnostics to the statement that wrote the offending
          label. *)
}

val analyze_stmt : ctx -> A.stmt -> Diag.t list
(** Diagnostics for one statement, errors first.  Never raises on
    malformed input — unknown names come back as [Name_error]
    diagnostics. *)

val select_interval : ctx -> A.select -> Interval.t
(** The label interval inferred for the SELECT's output rows. *)

val referenced_tags : A.stmt -> string list
(** Every tag name the statement mentions ([{…}] label literals,
    [DECLASSIFYING] clauses, [PERFORM addsecrecy/declassify]
    arguments), deduplicated — the lint driver uses this to
    pre-create tags when linting scripts against a fresh database. *)

val subst_params :
  Ifdb_rel.Value.t array -> A.stmt -> A.stmt
(** Replace every [$n] with [bindings.(n-1)] as a constant; out-of-range
    placeholders are left intact.  Powers [ifdb_lint --bind] and the
    trace interpreter's analysis of [EXECUTE] with constant
    arguments. *)

(** {1 Trace-level abstract interpretation}

    The [trace_] entry points thread one {!Trace_state.t} through a
    whole script: [trace_begin] seeds it from the session context (an
    already-open transaction's write set included), then each statement
    goes through {!analyze_trace_stmt} (and each meta command through
    {!trace_meta}), and {!trace_finish} runs the whole-script passes
    (dead-write, stale-prepare) once the end of the script is known.

    Statement indices are 1-based and every item — statement or meta —
    consumes one, so index [i] always names the [i]-th item. *)

val trace_begin : ctx -> Trace_state.t
val analyze_trace_stmt : ctx -> Trace_state.t -> A.stmt -> Diag.t list
(** Diagnostics for the next statement of the script, under the
    symbolic state accumulated so far; applies the statement's state
    effects unless it is certain to fail.  Adds the cross-statement
    verdicts per-statement linting cannot see: guaranteed
    transaction-control failures ([Runtime_error]),
    [Declassify_after_revoke], [Txn_commit_trap], [Unreachable_stmt],
    and EXECUTE-of-doomed-template ([EXECUTE] with constant arguments
    analyzes as the fully bound statement). *)

val trace_meta :
  ctx -> Trace_state.t -> name:string -> args:string list -> Diag.t list
(** A shell/lint meta command ([principal], [newtag], [addsecrecy],
    [declassify], [delegate], [revoke]); unrecognized names are
    ignored. *)

val trace_finish : ctx -> Trace_state.t -> (int * Diag.t list) list
(** Whole-script diagnostics, grouped by the 1-based item index they
    attach to, in index order: [Dead_write] (a labeled write no later
    statement reads and no principal can ever declassify) and
    [Stale_prepare] (a catalog/authority change between PREPARE and
    its first EXECUTE). *)

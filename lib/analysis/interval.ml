module Label = Ifdb_difc.Label

type bound = Finite of Label.t | Top

type t = Bottom | Range of { lo : Label.t; hi : bound }

let top = Range { lo = Label.empty; hi = Top }
let bottom = Bottom
let exact l = Range { lo = l; hi = Finite l }
let range ~lo ~hi = Range { lo; hi }
let is_bottom t = t = Bottom

let exact_label = function
  | Range { lo; hi = Finite h } when Label.equal lo h -> Some lo
  | Range _ | Bottom -> None

let bound_union a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Finite x, Finite y -> Finite (Label.union x y)

let bound_inter a b =
  match (a, b) with
  | Top, b -> b
  | a, Top -> a
  | Finite x, Finite y -> Finite (Label.inter x y)

let join a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Range a, Range b ->
      Range { lo = Label.inter a.lo b.lo; hi = bound_union a.hi b.hi }

let meet a b =
  match (a, b) with
  | Bottom, _ | _, Bottom -> Bottom
  | Range a, Range b ->
      Range { lo = Label.union a.lo b.lo; hi = bound_inter a.hi b.hi }

let combine a b =
  match (a, b) with
  | Bottom, _ | _, Bottom -> Bottom
  | Range a, Range b ->
      Range { lo = Label.union a.lo b.lo; hi = bound_union a.hi b.hi }

let map f = function
  | Bottom -> Bottom
  | Range { lo; hi } ->
      Range
        { lo = f lo; hi = (match hi with Top -> Top | Finite h -> Finite (f h)) }

let cap t d = meet t (Range { lo = Label.empty; hi = Finite d })

let intern store = function
  | Bottom -> Bottom
  | Range { lo; hi } ->
      let canon l =
        Ifdb_difc.Label_store.label_of store
          (Ifdb_difc.Label_store.intern store l)
      in
      Range
        {
          lo = canon lo;
          hi = (match hi with Top -> Top | Finite h -> Finite (canon h));
        }

let normalize ~flows = function
  | Bottom -> Bottom
  | Range { lo; hi = Finite h } when not (flows ~src:lo ~dst:h) -> Bottom
  | t -> t

let equal a b =
  match (a, b) with
  | Bottom, Bottom -> true
  | Range a, Range b ->
      Label.equal a.lo b.lo
      && (match (a.hi, b.hi) with
         | Top, Top -> true
         | Finite x, Finite y -> Label.equal x y
         | Top, Finite _ | Finite _, Top -> false)
  | Bottom, Range _ | Range _, Bottom -> false

let to_string ~names = function
  | Bottom -> "bottom"
  | Range { lo; hi } ->
      Printf.sprintf "[%s, %s]" (names lo)
        (match hi with Top -> "top" | Finite h -> names h)

let pp ~names fmt t = Format.pp_print_string fmt (to_string ~names t)

type code =
  | Doomed_write
  | Vacuous_query
  | Overbroad_declassify
  | Commit_trap
  | Fk_leak
  | Name_error
  | Recompute_fallback
  | Parse_error
  | Runtime_error
  | Declassify_after_revoke
  | Txn_commit_trap
  | Dead_write
  | Stale_prepare
  | Unreachable_stmt

type severity = Error | Warning

type t = { d_code : code; d_severity : severity; d_message : string }

let code_string = function
  | Doomed_write -> "doomed-write"
  | Vacuous_query -> "vacuous-query"
  | Overbroad_declassify -> "overbroad-declassify"
  | Commit_trap -> "commit-trap"
  | Fk_leak -> "fk-leak"
  | Recompute_fallback -> "recompute-fallback"
  | Name_error -> "name-error"
  | Parse_error -> "parse-error"
  | Runtime_error -> "runtime-error"
  | Declassify_after_revoke -> "declassify-after-revoke"
  | Txn_commit_trap -> "txn-commit-trap"
  | Dead_write -> "dead-write"
  | Stale_prepare -> "stale-prepare"
  | Unreachable_stmt -> "unreachable-stmt"

let code_of_string = function
  | "doomed-write" -> Some Doomed_write
  | "vacuous-query" -> Some Vacuous_query
  | "overbroad-declassify" -> Some Overbroad_declassify
  | "commit-trap" -> Some Commit_trap
  | "fk-leak" -> Some Fk_leak
  | "recompute-fallback" -> Some Recompute_fallback
  | "name-error" -> Some Name_error
  | "parse-error" -> Some Parse_error
  | "runtime-error" -> Some Runtime_error
  | "declassify-after-revoke" -> Some Declassify_after_revoke
  | "txn-commit-trap" -> Some Txn_commit_trap
  | "dead-write" -> Some Dead_write
  | "stale-prepare" -> Some Stale_prepare
  | "unreachable-stmt" -> Some Unreachable_stmt
  | _ -> None

let make code severity fmt =
  Format.kasprintf
    (fun msg -> { d_code = code; d_severity = severity; d_message = msg })
    fmt

let error code fmt = make code Error fmt
let warning code fmt = make code Warning fmt
let is_error d = d.d_severity = Error

let to_string d =
  Printf.sprintf "%s %s: %s" (code_string d.d_code)
    (match d.d_severity with Error -> "error" | Warning -> "warning")
    d.d_message

let pp fmt d = Format.pp_print_string fmt (to_string d)

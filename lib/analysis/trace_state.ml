(* Symbolic session state threaded statement-by-statement through a
   whole SQL script by the trace-level analyzer (the [trace_] entry
   points in [Analysis]).

   The state is deliberately a *data* module: classification logic
   (what is an Error, how partitions merge with the catalog) lives in
   Analysis, which owns the catalog/authority context.  Everything
   here is exact or explicitly three-valued:

   - catalog deltas: tables/views created or dropped by the script,
     layered over the real catalog;
   - per-table label-partition delta events from analyzed DML, each
     tagged [`Def] (provably at least one row) or [`Maybe];
   - an authority-edge overlay (net added/removed grants) evaluated
     through {!Ifdb_difc.Authority.has_authority_hyp}, plus an ordered
     event log so revocations can be cited by statement index;
   - the open explicit transaction: begin index, accumulated write
     records, and whether a guaranteed-failing statement broke it;
   - prepared-statement templates with first-EXECUTE tracking for the
     stale-prepare pass;
   - read/write records for the whole-script dead-write pass. *)

module Label = Ifdb_difc.Label
module Tag = Ifdb_difc.Tag
module Principal = Ifdb_difc.Principal
module Schema = Ifdb_rel.Schema
module A = Ifdb_sql.Ast

type delta_event = Ins_def of Label.t | Ins_maybe of Label.t | Del of Label.t

type abs_table = {
  at_name : string;
  at_schema : Schema.t;
  at_constrained : bool;
      (* any PK/unique/FK: an insert may fail, so its partition effects
         are never [Ins_def] *)
}

type abs_view = {
  av_name : string;
  av_query : A.select;
  av_declassify : Label.t;
  av_materialized : bool;
}

type auth_event = {
  ae_kind : [ `Delegate | `Revoke ];
  ae_grantor : Principal.t;
  ae_grantee : Principal.t;
  ae_tag : Tag.t;
  ae_index : int;
}

type txn = {
  tx_begin : int;
  mutable tx_writes : (int * string * Label.t * bool) list;
      (* statement index, table, written tuple label, definite? *)
  mutable tx_broken : int option;
      (* index of the first guaranteed-failing statement, if any *)
}

type prep = {
  pp_stmt : A.stmt;
  pp_index : int;
  mutable pp_first_exec : int option;
}

type read_rec = { rd_index : int; rd_table : string; rd_dst : Label.t }

type t = {
  ts_symbolic : bool;
  mutable ts_index : int;
  mutable ts_principal : Principal.t;
  mutable ts_label : Label.t;
  ts_session_labels : (int, Label.t) Hashtbl.t;
      (* per-principal symbolic labels, so \principal switches restore
         each session's own clearance *)
  ts_tables : (string, abs_table) Hashtbl.t;
  ts_views : (string, abs_view) Hashtbl.t;
  ts_dropped : (string, unit) Hashtbl.t;
  ts_deltas : (string, (int * delta_event) list) Hashtbl.t;
      (* newest first; indices identify the originating statement *)
  mutable ts_added : (Principal.t * Principal.t * Tag.t) list;
  mutable ts_removed : (Principal.t * Principal.t * Tag.t) list;
  mutable ts_auth_events : auth_event list; (* newest first *)
  mutable ts_txn : txn option;
  ts_prepared : (string, prep) Hashtbl.t;
  mutable ts_reads : read_rec list;
  mutable ts_stamp_events : int list;
      (* statement indices of catalog or authority mutations — exactly
         the events that move the runtime plan/diagnostic stamp *)
}

let norm = String.lowercase_ascii

let create ?(symbolic = true) ~principal ~label () =
  {
    ts_symbolic = symbolic;
    ts_index = 0;
    ts_principal = principal;
    ts_label = label;
    ts_session_labels = Hashtbl.create 4;
    ts_tables = Hashtbl.create 8;
    ts_views = Hashtbl.create 8;
    ts_dropped = Hashtbl.create 4;
    ts_deltas = Hashtbl.create 8;
    ts_added = [];
    ts_removed = [];
    ts_auth_events = [];
    ts_txn = None;
    ts_prepared = Hashtbl.create 4;
    ts_reads = [];
    ts_stamp_events = [];
  }

let symbolic t = t.ts_symbolic
let index t = t.ts_index

let next_index t =
  t.ts_index <- t.ts_index + 1;
  t.ts_index

let principal t = t.ts_principal
let label t = t.ts_label
let set_label t l = t.ts_label <- l

let switch_principal t p =
  Hashtbl.replace t.ts_session_labels (Principal.to_int t.ts_principal)
    t.ts_label;
  t.ts_principal <- p;
  t.ts_label <-
    Option.value ~default:Label.empty
      (Hashtbl.find_opt t.ts_session_labels (Principal.to_int p))

(* --- catalog overlay ------------------------------------------------ *)

let dropped t name = Hashtbl.mem t.ts_dropped (norm name)
let find_table t name = Hashtbl.find_opt t.ts_tables (norm name)
let find_view t name = Hashtbl.find_opt t.ts_views (norm name)

let define_table t at =
  Hashtbl.remove t.ts_dropped (norm at.at_name);
  Hashtbl.replace t.ts_tables (norm at.at_name) at

let define_view t av =
  Hashtbl.remove t.ts_dropped (norm av.av_name);
  Hashtbl.replace t.ts_views (norm av.av_name) av

let drop t name =
  let key = norm name in
  Hashtbl.remove t.ts_tables key;
  Hashtbl.remove t.ts_views key;
  Hashtbl.remove t.ts_deltas key;
  Hashtbl.replace t.ts_dropped key ()

(* --- partition deltas ----------------------------------------------- *)

let deltas t name =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.ts_deltas (norm name)))

let add_delta t name ~index ev =
  let key = norm name in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.ts_deltas key) in
  Hashtbl.replace t.ts_deltas key ((index, ev) :: prev)

(* Delete every delta event recorded at statement index >= [since]:
   the transaction containing them is certain to abort. *)
let revert_deltas_since t ~since =
  Hashtbl.iter
    (fun key evs ->
      Hashtbl.replace t.ts_deltas key
        (List.filter (fun (i, _) -> i < since) evs))
    (Hashtbl.copy t.ts_deltas)

(* Downgrade definite inserts at index >= [since] to maybe: the
   transaction containing them may abort. *)
let soften_deltas_since t ~since =
  Hashtbl.iter
    (fun key evs ->
      Hashtbl.replace t.ts_deltas key
        (List.map
           (fun (i, ev) ->
             match ev with
             | Ins_def l when i >= since -> (i, Ins_maybe l)
             | _ -> (i, ev))
           evs))
    (Hashtbl.copy t.ts_deltas)

(* --- authority overlay ---------------------------------------------- *)

let overlay t = (t.ts_added, t.ts_removed)
let overlay_empty t = t.ts_added = [] && t.ts_removed = []

let delegate_edge t ~grantor ~grantee ~tag ~index =
  let edge = (grantor, grantee, tag) in
  t.ts_removed <- List.filter (fun e -> e <> edge) t.ts_removed;
  if not (List.mem edge t.ts_added) then t.ts_added <- edge :: t.ts_added;
  t.ts_auth_events <-
    { ae_kind = `Delegate; ae_grantor = grantor; ae_grantee = grantee;
      ae_tag = tag; ae_index = index }
    :: t.ts_auth_events;
  t.ts_stamp_events <- index :: t.ts_stamp_events

let revoke_edge t ~grantor ~grantee ~tag ~index =
  let edge = (grantor, grantee, tag) in
  t.ts_added <- List.filter (fun e -> e <> edge) t.ts_added;
  if not (List.mem edge t.ts_removed) then t.ts_removed <- edge :: t.ts_removed;
  t.ts_auth_events <-
    { ae_kind = `Revoke; ae_grantor = grantor; ae_grantee = grantee;
      ae_tag = tag; ae_index = index }
    :: t.ts_auth_events;
  t.ts_stamp_events <- index :: t.ts_stamp_events

let auth_events t = List.rev t.ts_auth_events

let note_stamp_event t ~index =
  t.ts_stamp_events <- index :: t.ts_stamp_events

let stamp_events t = List.rev t.ts_stamp_events

(* --- transaction ---------------------------------------------------- *)

let txn t = t.ts_txn

let begin_txn t ~index ?(writes = []) () =
  t.ts_txn <- Some { tx_begin = index; tx_writes = writes; tx_broken = None }

let in_open_txn t =
  match t.ts_txn with Some { tx_broken = None; _ } -> true | _ -> false

let broken t = match t.ts_txn with Some { tx_broken; _ } -> tx_broken | None -> None

let mark_broken t ~index =
  match t.ts_txn with
  | Some ({ tx_broken = None; _ } as tx) ->
      tx.tx_broken <- Some index;
      (* the abort is certain: the transaction's provisional partition
         effects never become visible *)
      revert_deltas_since t ~since:tx.tx_begin
  | Some _ | None -> ()

let record_txn_write t ~index ~table ~label ~definite =
  match t.ts_txn with
  | Some ({ tx_broken = None; _ } as tx) ->
      tx.tx_writes <- (index, table, label, definite) :: tx.tx_writes
  | Some _ | None -> ()

let txn_writes t =
  match t.ts_txn with Some tx -> List.rev tx.tx_writes | None -> []

let close_txn t ~outcome =
  (match (t.ts_txn, outcome) with
  | Some { tx_broken = Some _; _ }, _ ->
      (* the break already reverted the transaction's deltas; events
         after it belong to implicit transactions and must survive *)
      ()
  | Some tx, `Abort -> revert_deltas_since t ~since:tx.tx_begin
  | Some tx, `Maybe -> soften_deltas_since t ~since:tx.tx_begin
  | Some _, `Commit | None, _ -> ());
  t.ts_txn <- None

(* --- prepared statements -------------------------------------------- *)

let find_prepared t name = Hashtbl.find_opt t.ts_prepared (norm name)

let define_prepared t ~name ~stmt ~index =
  Hashtbl.replace t.ts_prepared (norm name)
    { pp_stmt = stmt; pp_index = index; pp_first_exec = None }

let note_execute t ~name ~index =
  match find_prepared t name with
  | Some p -> if p.pp_first_exec = None then p.pp_first_exec <- Some index
  | None -> ()

let remove_prepared t name = Hashtbl.remove t.ts_prepared (norm name)
let clear_prepared t = Hashtbl.reset t.ts_prepared

let prepared t =
  Hashtbl.fold (fun name p acc -> (name, p) :: acc) t.ts_prepared []

(* --- whole-script read/write records -------------------------------- *)

let note_read t ~table ~dst =
  t.ts_reads <- { rd_index = t.ts_index; rd_table = norm table; rd_dst = dst }
                :: t.ts_reads

let reads t = List.rev t.ts_reads

(* Surviving insert events, for the dead-write pass: (index, table,
   label, definite).  Aborted transactions' events were reverted. *)
let insert_events t =
  Hashtbl.fold
    (fun table evs acc ->
      List.fold_left
        (fun acc (i, ev) ->
          match ev with
          | Ins_def l -> (i, table, l, true) :: acc
          | Ins_maybe l -> (i, table, l, false) :: acc
          | Del _ -> acc)
        acc evs)
    t.ts_deltas []
  |> List.sort compare

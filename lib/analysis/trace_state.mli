(** Symbolic session state for the trace-level analyzer.

    One value of {!t} represents everything the abstract interpreter
    knows about a session part-way through a script: which relations
    exist (catalog overlay), which label partitions of each table are
    provably or possibly non-empty (delta events over the committed
    heap counts), which authority edges were added or removed by the
    script (overlay evaluated via
    {!Ifdb_difc.Authority.has_authority_hyp}), the open explicit
    transaction's accumulated write labels, and the prepared-statement
    templates — each fact tagged with the 1-based statement index that
    produced it so cross-statement diagnostics can cite their origin.

    The driving logic lives in {!Analysis.analyze_trace_stmt}; this
    module only stores and reverts state. *)

module Label := Ifdb_difc.Label
module Tag := Ifdb_difc.Tag
module Principal := Ifdb_difc.Principal
module Schema := Ifdb_rel.Schema
module A := Ifdb_sql.Ast

type delta_event =
  | Ins_def of Label.t
      (** at least one row provably inserted under this label *)
  | Ins_maybe of Label.t  (** possibly inserted (params, SELECT source,
                              constrained table, open transaction) *)
  | Del of Label.t  (** rows under this label possibly deleted *)

type abs_table = {
  at_name : string;
  at_schema : Schema.t;
  at_constrained : bool;
}

type abs_view = {
  av_name : string;
  av_query : A.select;
  av_declassify : Label.t;
  av_materialized : bool;
}

type auth_event = {
  ae_kind : [ `Delegate | `Revoke ];
  ae_grantor : Principal.t;
  ae_grantee : Principal.t;
  ae_tag : Tag.t;
  ae_index : int;
}

type txn = {
  tx_begin : int;
  mutable tx_writes : (int * string * Label.t * bool) list;
  mutable tx_broken : int option;
}

type prep = {
  pp_stmt : A.stmt;
  pp_index : int;
  mutable pp_first_exec : int option;
}

type read_rec = { rd_index : int; rd_table : string; rd_dst : Label.t }

type t

val create :
  ?symbolic:bool -> principal:Principal.t -> label:Label.t -> unit -> t
(** [symbolic] (default [true]) marks a fully symbolic interpretation
    (lint [--trace], shell [\check]): statements are never executed and
    partition deltas are layered over the committed heap counts.  A
    non-symbolic trace is the thin runtime shadow the session keeps for
    an open explicit transaction — only write records (for diagnostic
    index attribution) are populated, never catalog or partition
    overlays, because the runtime heap already holds the real state. *)

val symbolic : t -> bool

val index : t -> int
(** Index of the item currently being analyzed (0 before the first). *)

val next_index : t -> int
(** Advance to the next item (statement or meta command) and return its
    1-based index.  Every item consumes an index, so index [i] is
    always the [i]-th item of the script. *)

val principal : t -> Principal.t
val label : t -> Label.t
val set_label : t -> Label.t -> unit

val switch_principal : t -> Principal.t -> unit
(** Save the current principal's symbolic label and restore (or start
    empty) the new one's — mirrors the lint driver's per-principal
    sessions. *)

(** {1 Catalog overlay} *)

val dropped : t -> string -> bool
val find_table : t -> string -> abs_table option
val find_view : t -> string -> abs_view option
val define_table : t -> abs_table -> unit
val define_view : t -> abs_view -> unit
val drop : t -> string -> unit

(** {1 Partition deltas} *)

val deltas : t -> string -> (int * delta_event) list
(** Events for a table in statement order. *)

val add_delta : t -> string -> index:int -> delta_event -> unit

(** {1 Authority overlay} *)

val overlay :
  t ->
  (Principal.t * Principal.t * Tag.t) list
  * (Principal.t * Principal.t * Tag.t) list
(** Net (added, removed) grant edges, for
    {!Ifdb_difc.Authority.has_authority_hyp}. *)

val overlay_empty : t -> bool

val delegate_edge :
  t -> grantor:Principal.t -> grantee:Principal.t -> tag:Tag.t ->
  index:int -> unit

val revoke_edge :
  t -> grantor:Principal.t -> grantee:Principal.t -> tag:Tag.t ->
  index:int -> unit

val auth_events : t -> auth_event list
(** All delegate/revoke events in statement order. *)

val note_stamp_event : t -> index:int -> unit
(** Record a catalog mutation (DDL) at [index]; delegate/revoke events
    record themselves.  These are exactly the events that move the
    runtime plan/diagnostic stamp (catalog version × authority
    generation), which the stale-prepare pass checks. *)

val stamp_events : t -> int list

(** {1 Open explicit transaction} *)

val txn : t -> txn option
val begin_txn :
  t -> index:int -> ?writes:(int * string * Label.t * bool) list -> unit -> unit

val in_open_txn : t -> bool
(** An explicit transaction is open and not broken. *)

val broken : t -> int option
(** Index of the statement that broke the open transaction, if any. *)

val mark_broken : t -> index:int -> unit
(** A guaranteed-failing statement at [index] aborts the open
    transaction: its provisional delta events are reverted (the abort
    is certain) and later statements are flagged unreachable. *)

val record_txn_write :
  t -> index:int -> table:string -> label:Label.t -> definite:bool -> unit

val txn_writes : t -> (int * string * Label.t * bool) list

val close_txn : t -> outcome:[ `Commit | `Abort | `Maybe ] -> unit
(** End the open transaction.  [`Abort] reverts its delta events,
    [`Maybe] (a COMMIT that may be rejected) downgrades its definite
    inserts to maybe, [`Commit] keeps them. *)

(** {1 Prepared statements} *)

val find_prepared : t -> string -> prep option
val define_prepared : t -> name:string -> stmt:A.stmt -> index:int -> unit
val note_execute : t -> name:string -> index:int -> unit
val remove_prepared : t -> string -> unit
val clear_prepared : t -> unit
val prepared : t -> (string * prep) list

(** {1 Whole-script records (dead-write / stale-prepare passes)} *)

val note_read : t -> table:string -> dst:Label.t -> unit
(** Record that the current statement reads [table] with destination
    label [dst] (scans, and the rows a write statement matches). *)

val reads : t -> read_rec list

val insert_events : t -> (int * string * Label.t * bool) list
(** Surviving insert events — (index, table, label, definite) — in
    index order; events of aborted transactions are gone. *)

(** Typed diagnostics for the static label-flow analyzer.

    Each diagnostic carries a stable {!code} (the string form appears in
    [-- lint: expect <code>] annotations and golden files), a severity,
    and a human-readable message rendered with the authority state's
    name-resolving label formatter ({!Ifdb_difc.Authority.label_to_string}).

    Severity semantics:
    - [Error]: the statement is {e guaranteed} to fail (or to be
      rejected) at runtime under the current committed data and
      authority state — e.g. a doomed write, a declassification the
      principal cannot back, an unsatisfiable commit label;
    - [Warning]: the statement can run, but is suspicious — e.g. a
      vacuous predicate, a declassified tag that declassifies nothing,
      an FK whose label shapes can leak. *)

type code =
  | Doomed_write
      (** UPDATE/DELETE/INSERT whose target labels can never satisfy the
          Write Rule under the session label. *)
  | Vacuous_query
      (** A predicate or scan restricted to partitions invisible under
          the session label: provably matches nothing. *)
  | Overbroad_declassify
      (** A [DECLASSIFYING] clause (view, INSERT, or [PERFORM
          declassify]) the acting principal lacks authority for, or one
          that declassifies tags never present in the data. *)
  | Commit_trap
      (** A transaction whose write-set labels make the commit-label
          rule unsatisfiable for the current session label. *)
  | Fk_leak
      (** A foreign-key shape that leaks across labels: referenced rows
          under labels the referencing side cannot reach, or an insert
          whose label difference no [DECLASSIFYING] clause covers. *)
  | Name_error
      (** Static name-resolution failure: unknown relation, column, tag
          — a certain SQL error at runtime. *)
  | Recompute_fallback
      (** A [CREATE MATERIALIZED VIEW] whose body the incremental
          maintenance compiler does not support: the view works, but
          every read will recompute it from its base tables. *)
  | Parse_error  (** The lint driver could not parse the statement. *)
  | Runtime_error
      (** Driver-level code: executing the statement raised — or, in
          trace mode, a statement the trace interpreter can prove will
          raise a plain SQL error (COMMIT outside a transaction, BEGIN
          inside one, EXECUTE of an unknown prepared name). *)
  | Declassify_after_revoke
      (** Trace mode: a declassification (or delegation) whose backing
          authority is provably gone by the time the statement runs —
          an earlier statement in the same script revoked the covering
          grant. *)
  | Txn_commit_trap
      (** Trace mode: an explicit [BEGIN…COMMIT] whose accumulated
          write labels guarantee the commit-label rule fails at the
          [COMMIT] — visible only across statements. *)
  | Dead_write
      (** Trace mode: a write whose partition is provably unreadable by
          every later statement in the script {e and} every principal
          in the final authority graph. *)
  | Stale_prepare
      (** Trace mode: a [PREPARE] whose plan-relevant catalog or
          authority state is guaranteed invalidated before its first
          [EXECUTE], so the prepare-time plan is never used. *)
  | Unreachable_stmt
      (** Trace mode: a statement after a guaranteed-failing one in the
          same explicit transaction — the failure aborts the
          transaction, so this statement runs outside it (or its
          effects are certain to be rolled back). *)

type severity = Error | Warning

type t = { d_code : code; d_severity : severity; d_message : string }

val code_string : code -> string
(** Stable kebab-case form: ["doomed-write"], ["vacuous-query"],
    ["overbroad-declassify"], ["commit-trap"], ["fk-leak"],
    ["recompute-fallback"], ["name-error"], ["parse-error"],
    ["runtime-error"], ["declassify-after-revoke"], ["txn-commit-trap"],
    ["dead-write"], ["stale-prepare"], ["unreachable-stmt"]. *)

val code_of_string : string -> code option

val error : code -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : code -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val to_string : t -> string
(** [<code> <severity>: <message>] — the one-line form the shell,
    [ifdb_lint] and the golden files all print. *)

val pp : Format.formatter -> t -> unit

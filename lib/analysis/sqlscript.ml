type kind = Meta of string * string list | Stmt

type item = {
  it_line : int;
  it_text : string;
  it_kind : kind;
  mutable it_expects : string list;
}

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* "lint: expect doomed-write, fk-leak" (the text after "--").
   [expect] applies in every lint mode; [expect-trace] / [expect-stmt]
   scope the codes to trace- or per-statement-mode runs, recorded here
   with a "trace:" / "stmt:" prefix the driver strips. *)
let expects_of_comment body =
  let body = String.trim body in
  let prefix = "lint:" in
  if not (String.length body >= String.length prefix
          && String.sub body 0 (String.length prefix) = prefix)
  then None
  else
    let rest =
      String.trim
        (String.sub body (String.length prefix)
           (String.length body - String.length prefix))
    in
    let codes_with tag codes =
      Some
        (List.concat_map (String.split_on_char ',') codes
        |> List.map String.trim
        |> List.filter (fun c -> c <> "")
        |> List.map (fun c -> tag ^ c))
    in
    match split_ws rest with
    | "expect" :: codes -> codes_with "" codes
    | "expect-trace" :: codes -> codes_with "trace:" codes
    | "expect-stmt" :: codes -> codes_with "stmt:" codes
    | _ -> None

(* "-- lint: bind 1,alice" names the default parameter bindings for the
   whole script, so a checked-in parameterized template lints as the
   statement it would execute as.  The first directive wins; callers
   with explicit bindings (ifdb_lint --bind) override it. *)
let bind_directive text =
  String.split_on_char '\n' text
  |> List.find_map (fun l ->
         let l = String.trim l in
         if String.length l >= 2 && String.sub l 0 2 = "--" then
           let body =
             String.trim (String.sub l 2 (String.length l - 2))
           in
           let prefix = "lint:" in
           if
             String.length body >= String.length prefix
             && String.sub body 0 (String.length prefix) = prefix
           then
             let rest =
               String.trim
                 (String.sub body (String.length prefix)
                    (String.length body - String.length prefix))
             in
             match split_ws rest with
             | "bind" :: spec -> Some (String.concat " " spec)
             | _ -> None
           else None
         else None)

let split_script text =
  let items = ref [] in
  let pending = ref [] in
  let buf = Buffer.create 64 in
  let buf_line = ref 1 in
  let line = ref 1 in
  let n = String.length text in
  let last_item_line = ref 0 in
  let emit () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then begin
      let kind =
        if s.[0] = '\\' then
          match split_ws (String.sub s 1 (String.length s - 1)) with
          | name :: args -> Meta (name, args)
          | [] -> Meta ("", [])
        else Stmt
      in
      let it =
        { it_line = !buf_line; it_text = s; it_kind = kind; it_expects = !pending }
      in
      pending := [];
      last_item_line := !line;
      items := it :: !items
    end
  in
  let buf_blank () = String.trim (Buffer.contents buf) = "" in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if buf_blank () then buf_line := !line;
    (match c with
    | '-' when !i + 1 < n && text.[!i + 1] = '-' ->
        (* comment to end of line *)
        let j = ref (!i + 2) in
        while !j < n && text.[!j] <> '\n' do incr j done;
        let body = String.sub text (!i + 2) (!j - !i - 2) in
        (match expects_of_comment body with
        | Some codes -> (
            (* trailing a just-emitted statement on the same line, or
               ahead of the next one *)
            match !items with
            | it :: _ when buf_blank () && !last_item_line = !line ->
                it.it_expects <- it.it_expects @ codes
            | _ -> pending := !pending @ codes)
        | None -> ());
        i := !j - 1
    | '/' when !i + 1 < n && text.[!i + 1] = '*' ->
        (* block comment, skipped wholesale (expect-annotations are
           line-comment only); newlines inside still count *)
        let j = ref (!i + 2) in
        let fin = ref false in
        while (not !fin) && !j < n do
          if text.[!j] = '\n' then incr line;
          if !j + 1 < n && text.[!j] = '*' && text.[!j + 1] = '/' then begin
            fin := true;
            incr j
          end;
          incr j
        done;
        i := !j - 1
    | '\r' -> Buffer.add_char buf ' '
    | '\'' ->
        (* string literal: copy verbatim, '' is an escaped quote *)
        Buffer.add_char buf c;
        let j = ref (!i + 1) in
        let fin = ref false in
        while (not !fin) && !j < n do
          Buffer.add_char buf text.[!j];
          if text.[!j] = '\n' then incr line;
          if text.[!j] = '\'' then
            if !j + 1 < n && text.[!j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              incr j
            end
            else fin := true;
          incr j
        done;
        i := !j - 1
    | ';' -> emit ()
    | '\n' ->
        (* meta commands are one line *)
        (match String.trim (Buffer.contents buf) with
        | s when s <> "" && s.[0] = '\\' -> emit ()
        | _ -> Buffer.add_char buf ' ');
        incr line
    | c -> Buffer.add_char buf c);
    incr i
  done;
  emit ();
  List.rev !items

let sql_keywords =
  [
    "select"; "insert"; "update"; "delete"; "create"; "drop"; "begin";
    "commit"; "rollback"; "perform"; "call";
  ]

let looks_like_sql s =
  match split_ws (String.map (function '\n' | '\r' -> ' ' | c -> c) s) with
  | w :: _ -> List.mem (String.lowercase_ascii w) sql_keywords
  | [] -> false

(* A '%' directly before a letter *outside* any '...' literal marks the
   string as a printf template, not executable SQL.  (Inside quotes it
   is a LIKE wildcard or data and stays fair game.) *)
let is_template s =
  let n = String.length s in
  let rec go i inq =
    if i >= n then false
    else
      match s.[i] with
      | '\'' -> go (i + 1) (not inq)
      | '%'
        when (not inq)
             && i + 1 < n
             && (match s.[i + 1] with
                | 'a' .. 'z' | 'A' .. 'Z' -> true
                | _ -> false) ->
          true
      | _ -> go (i + 1) inq
  in
  go 0 false

(* A small scanner for OCaml source: collect string literals with their
   start line, skipping (possibly nested) comments. *)
let extract_ml_sql src =
  let out = ref [] in
  let n = String.length src in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, nesting-aware; strings inside are ignored wholesale *)
      let depth = ref 1 in
      let j = ref (!i + 2) in
      while !depth > 0 && !j < n do
        if !j + 1 < n && src.[!j] = '(' && src.[!j + 1] = '*' then begin
          incr depth;
          bump src.[!j];
          j := !j + 2
        end
        else if !j + 1 < n && src.[!j] = '*' && src.[!j + 1] = ')' then begin
          decr depth;
          j := !j + 2
        end
        else begin
          bump src.[!j];
          incr j
        end
      done;
      i := !j
    end
    else if c = '"' then begin
      let start_line = !line in
      let b = Buffer.create 64 in
      let j = ref (!i + 1) in
      let fin = ref false in
      while (not !fin) && !j < n do
        let d = src.[!j] in
        if d = '\\' && !j + 1 < n then begin
          (match src.[!j + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | '\\' -> Buffer.add_char b '\\'
          | '"' -> Buffer.add_char b '"'
          | '\'' -> Buffer.add_char b '\''
          | '\n' ->
              (* line continuation: skip leading whitespace on the
                 next line *)
              incr line;
              let k = ref (!j + 2) in
              while !k < n && (src.[!k] = ' ' || src.[!k] = '\t') do incr k done;
              j := !k - 2
          | d2 ->
              Buffer.add_char b '\\';
              Buffer.add_char b d2);
          j := !j + 2
        end
        else if d = '"' then begin
          fin := true;
          incr j
        end
        else begin
          bump d;
          Buffer.add_char b d;
          incr j
        end
      done;
      let s = Buffer.contents b in
      if looks_like_sql s && not (is_template s) then
        out := (start_line, s) :: !out;
      i := !j
    end
    else if c = '{' then begin
      (* {|...|} or {id|...|id} quoted string *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
      do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let closing = "|" ^ id ^ "}" in
        let start_line = !line in
        let body_start = !j + 1 in
        let k = ref body_start in
        let stop = ref (-1) in
        while !stop < 0 && !k + String.length closing <= n do
          if String.sub src !k (String.length closing) = closing then
            stop := !k
          else begin
            bump src.[!k];
            incr k
          end
        done;
        if !stop >= 0 then begin
          let s = String.sub src body_start (!stop - body_start) in
          if looks_like_sql s && not (is_template s) then
            out := (start_line, s) :: !out;
          i := !stop + String.length closing
        end
        else begin
          bump c;
          i := !i + 1
        end
      end
      else begin
        bump c;
        i := !i + 1
      end
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !out

module Db = Ifdb_core.Database
module Span = Ifdb_obs.Span

let () =
  let db = Db.create ~isolation:Db.Serializable ~trace_sample:1 () in
  let admin = Db.connect_admin db in
  let p = Db.create_principal admin ~name:"u" in
  let s = Db.connect db ~principal:p in
  ignore (Db.exec s "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
  ignore (Db.exec s "INSERT INTO t VALUES (1, 1)");
  ignore (Db.exec s "UPDATE t SET v = 2 WHERE k = 1");
  let sp = Db.spans db in
  let records = Span.recent sp (Span.capacity sp) in
  print_string (Span.to_chrome_json records)
